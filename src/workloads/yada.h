/**
 * @file
 * Yada ("yet another Delaunay application"): the STAMP mesh-refinement
 * kernel. Threads pull bad triangles from a shared work queue and
 * refine them -- each refinement retires the triangle and inserts a
 * few new ones, some of which are bad and re-enter the queue.
 * Moderate-to-long transactions with a contended work queue.
 */

#ifndef RHTM_WORKLOADS_YADA_H
#define RHTM_WORKLOADS_YADA_H

#include <atomic>

#include "src/structures/tx_hashmap.h"
#include "src/structures/tx_queue.h"
#include "src/workloads/workload.h"

namespace rhtm
{

/** Tuning for the yada kernel. */
struct YadaParams
{
    unsigned initialTriangles = 4096; //!< Seed mesh size.
    unsigned initialBadPct = 25;      //!< Seed bad-triangle share.
    unsigned childBadPct = 18;        //!< Refined children gone bad.
    unsigned childrenPerRefine = 3;   //!< Triangles per refinement.
};

/** The yada kernel. */
class YadaWorkload : public Workload
{
  public:
    explicit YadaWorkload(YadaParams params = YadaParams());

    const char *name() const override { return "yada"; }
    void setup(TmRuntime &rt, ThreadCtx &ctx) override;
    void runOp(TmRuntime &rt, ThreadCtx &ctx, Rng &rng) override;
    bool verify(TmRuntime &rt, std::string *why) const override;

  private:
    YadaParams params_;
    std::atomic<uint64_t> nextId_{1};
    TxQueue workQueue_;    //!< Bad triangles awaiting refinement.
    TxHashMap mesh_;       //!< Triangle id -> 1 (bad) or 2 (good).
    alignas(64) uint64_t refinements_ = 0;
    alignas(64) uint64_t retired_ = 0;
    alignas(64) uint64_t created_ = 0;
    alignas(64) uint64_t reseeds_ = 0;
};

} // namespace rhtm

#endif // RHTM_WORKLOADS_YADA_H
