/**
 * @file
 * White-box crash test for the deferred-action / durable-commit seam:
 * a crash captured between the commit's visibility release and the
 * deferred onCommit handlers (kCrashPostMarker fires inside the
 * drain+mark step, before the action log unwinds) must neither lose
 * nor duplicate handler effects, and the crashed transaction -- whose
 * marker is durable -- must survive recovery
 * (docs/PERSISTENCE.md "Crash-site map", docs/LIFECYCLE.md).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/api/runtime.h"
#include "src/check/recovery.h"

namespace rhtm
{
namespace
{

TEST(ActionCrashTest, PostMarkerCrashRunsHandlersExactlyOnce)
{
    for (AlgoKind kind : allAlgoKinds()) {
        const char *algo = algoKindName(kind);
        constexpr unsigned kOps = 6;
        constexpr uint64_t kCrashOp = 3; // 1-based commit to crash.

        RuntimeConfig cfg;
        cfg.persist.enabled = true;
        cfg.persist.seed = 11;
        cfg.persist.crashes.at(FaultSite::kCrashPostMarker, kCrashOp);
        TmRuntime rt(kind, cfg);
        std::vector<uint64_t> arr(kOps, 0);
        rt.nvm()->registerRegion(arr.data(), arr.size());
        ThreadCtx &ctx = rt.registerThread();

        std::vector<unsigned> handlerRuns(kOps, 0);
        for (unsigned op = 0; op < kOps; ++op) {
            rt.run(ctx, [&, op](Txn &tx) {
                tx.onCommit([&handlerRuns, op] { ++handlerRuns[op]; });
                tx.store(&arr[op], 500 + op);
                // Deferred: the handler must not have run inside the
                // transaction, crash schedule or not.
                EXPECT_EQ(handlerRuns[op], 0u) << algo;
            });
            EXPECT_EQ(handlerRuns[op], 1u)
                << algo << ": op " << op
                << " handler lost or duplicated around the crash";
        }

        // The crash landed on commit kCrashOp's drain+mark step.
        ASSERT_EQ(rt.nvm()->snapshots().size(), 1u) << algo;
        const CrashSnapshot &snap = rt.nvm()->snapshots()[0];
        EXPECT_EQ(snap.site, FaultSite::kCrashPostMarker) << algo;
        ASSERT_EQ(snap.history.size(), kCrashOp) << algo;

        // Its marker is durable, so recovery must keep the txn: the
        // checker enforces the floor, and the concrete word value
        // proves the redo log carried the write.
        RecoveryReport report;
        RecoveryCheckResult res = recoverAndCheck(snap, {}, &report);
        EXPECT_EQ(res.verdict, RecoveryVerdict::kOk)
            << algo << ": " << res.detail;
        EXPECT_GE(res.prefixLength, kCrashOp)
            << algo << ": marked commit fell out of the prefix";
        NvmImage image = snap.image;
        recoverImage(image);
        EXPECT_EQ(image.data[kCrashOp - 1], 500 + kCrashOp - 1)
            << algo << ": crashed commit's write lost";
        EXPECT_GE(report.marksObserved, kCrashOp) << algo;

        // Recovery is pure data replay: verifying a snapshot must not
        // re-run (duplicate) any deferred handler.
        for (unsigned op = 0; op < kOps; ++op)
            EXPECT_EQ(handlerRuns[op], 1u) << algo << ": op " << op;
        EXPECT_EQ(rt.stats().get(Counter::kCommitActionsRun),
                  uint64_t(kOps))
            << algo;
    }
}

TEST(ActionCrashTest, AbortedTransactionLeavesNoDurableTrace)
{
    // The retrying attempt discards its staged redo; only the final
    // committed attempt seals. The crash capture right before the seal
    // must therefore show no trace of the transaction at all.
    for (AlgoKind kind : allAlgoKinds()) {
        // retry() is not rollback-safe on an elided lock; lock
        // elision's abort path seals its partial writes instead
        // (partial-visibility semantics, docs/LIFECYCLE.md).
        if (kind == AlgoKind::kLockElision)
            continue;
        const char *algo = algoKindName(kind);
        RuntimeConfig cfg;
        cfg.persist.enabled = true;
        cfg.persist.seed = 5;
        cfg.persist.crashes.at(FaultSite::kCrashPreLogSeal, 1);
        TmRuntime rt(kind, cfg);
        std::vector<uint64_t> arr(4, 0);
        rt.nvm()->registerRegion(arr.data(), arr.size());
        ThreadCtx &ctx = rt.registerThread();

        unsigned attempts = 0;
        unsigned aborted = 0;
        rt.run(ctx, [&](Txn &tx) {
            ++attempts;
            tx.onAbort([&] { ++aborted; });
            tx.store(&arr[0], attempts);
            if (attempts == 1)
                tx.retry();
        });
        EXPECT_EQ(attempts, 2u) << algo;
        EXPECT_EQ(aborted, 1u) << algo;

        ASSERT_EQ(rt.nvm()->snapshots().size(), 1u) << algo;
        RecoveryCheckResult res =
            recoverAndCheck(rt.nvm()->snapshots()[0]);
        EXPECT_EQ(res.verdict, RecoveryVerdict::kOk)
            << algo << ": " << res.detail;
        NvmImage image = rt.nvm()->snapshots()[0].image;
        recoverImage(image);
        EXPECT_EQ(image.data[0], 0u)
            << algo << ": pre-seal crash must not expose the write";

        // Quiescent: the committed attempt is durable.
        NvmImage final_image = rt.nvm()->durableImage();
        recoverImage(final_image);
        EXPECT_EQ(final_image.data[0], 2u) << algo;
    }
}

} // namespace
} // namespace rhtm
