/**
 * @file
 * Admission-gate behaviour through the public runtime API
 * (docs/OVERLOAD.md): the gate sheds sheddable work during a serial
 * storm or kill-switch cooldown, queues-then-admits blocking callers,
 * opens on a collapsed commit-success EWMA, and is a strict no-op when
 * disabled. The adversarial end-to-end side (collapse without the gate
 * vs bounded tails with it) lives in bench_adversary; these tests pin
 * the gate's decision logic deterministically.
 */

#include <gtest/gtest.h>

#include "src/api/runtime.h"
#include "tests/test_support.h"

namespace rhtm
{
namespace
{

constexpr AlgoKind kKind = AlgoKind::kHybridNOrec;

alignas(64) uint64_t g_cell;

/** Gate config tuned so hysteresis resolves within a few queue steps. */
AdmissionConfig
testGate()
{
    AdmissionConfig a;
    a.enabled = true;
    a.maxQueueTicks = 8;
    a.closeStreak = 4; // Closes inside one queue stay once signals clear.
    a.probeEvery = 0;  // No half-open probing: decisions stay exact.
    return a;
}

/** Fake a serial FIFO backlog of @p depth unserved tickets. */
void
fakeSerialDepth(TmRuntime &rt, uint64_t depth)
{
    uint64_t serving = rt.peek(&rt.globals().serialServing);
    rt.poke(&rt.globals().serialNextTicket, serving + depth);
}

TEST(AdmissionTest, ShedsDuringSerialStormThenRecovers)
{
    RuntimeConfig cfg;
    cfg.admission = testGate();
    TmRuntime rt(kKind, cfg);
    ThreadCtx &ctx = rt.registerThread();
    g_cell = 0;

    // A deep serial convoy crosses the enter watermark instantly.
    fakeSerialDepth(rt, cfg.admission.serialQueueEnter + 4);
    TxnOptions opts;
    opts.allowShed = true;
    bool ran = false;
    TxnOutcome out = rt.runWith(ctx, opts, [&](Txn &) { ran = true; });
    EXPECT_EQ(out, TxnOutcome::kAdmissionShed);
    EXPECT_FALSE(ran) << "a shed body must never execute";
    ASSERT_NE(rt.admission(), nullptr);
    EXPECT_TRUE(rt.admission()->open());
    EXPECT_EQ(rt.stats().get(Counter::kAdmissionShed), 1u);
    // The sheddable caller queued its full allowance before giving up.
    EXPECT_EQ(rt.stats().get(Counter::kAdmissionQueuedTicks),
              cfg.admission.maxQueueTicks);

    // The storm drains; the next caller's brief queue observes the
    // all-clear streak, closes the gate, and is admitted.
    fakeSerialDepth(rt, 0);
    out = rt.runWith(ctx, opts, [&](Txn &tx) { tx.store(&g_cell, 7); });
    EXPECT_EQ(out, TxnOutcome::kCommitted);
    EXPECT_EQ(rt.peek(&g_cell), 7u);
    EXPECT_FALSE(rt.admission()->open());
}

TEST(AdmissionTest, BlockingCallerQueuesButIsNeverShed)
{
    RuntimeConfig cfg;
    cfg.admission = testGate();
    cfg.admission.closeStreak = 1 << 20; // Gate cannot close mid-test.
    TmRuntime rt(kKind, cfg);
    ThreadCtx &ctx = rt.registerThread();
    g_cell = 0;

    fakeSerialDepth(rt, cfg.admission.serialQueueEnter + 4);
    // Legacy run() has no shed path: it must queue its allowance and
    // then be admitted unconditionally -- degrade, never deadlock.
    rt.run(ctx, [&](Txn &tx) { tx.store(&g_cell, 5); });
    EXPECT_EQ(rt.peek(&g_cell), 5u);
    EXPECT_EQ(rt.stats().get(Counter::kAdmissionShed), 0u);
    EXPECT_EQ(rt.stats().get(Counter::kAdmissionQueuedTicks),
              cfg.admission.maxQueueTicks);
    EXPECT_TRUE(rt.admission()->open()) << "watermarks never cleared";
    fakeSerialDepth(rt, 0);
}

TEST(AdmissionTest, KillSwitchCooldownSheds)
{
    RuntimeConfig cfg;
    cfg.admission = testGate();
    TmRuntime rt(kKind, cfg);
    ThreadCtx &ctx = rt.registerThread();
    g_cell = 0;

    // A tripped HTM kill switch (nonzero cooldown) is an enter signal
    // on its own: the hardware path is known-bad, so piling more work
    // onto the software fallback only lengthens the convoy.
    rt.globals().killSwitch.cooldown.store(64,
                                           std::memory_order_relaxed);
    TxnOptions opts;
    opts.allowShed = true;
    TxnOutcome out =
        rt.runWith(ctx, opts, [&](Txn &tx) { tx.store(&g_cell, 1); });
    EXPECT_EQ(out, TxnOutcome::kAdmissionShed);
    EXPECT_EQ(rt.peek(&g_cell), 0u);
    EXPECT_EQ(rt.stats().get(Counter::kAdmissionShed), 1u);

    // Cooldown expires; the gate closes during the next queue stay.
    rt.globals().killSwitch.cooldown.store(0, std::memory_order_relaxed);
    out = rt.runWith(ctx, opts, [&](Txn &tx) { tx.store(&g_cell, 2); });
    EXPECT_EQ(out, TxnOutcome::kCommitted);
    EXPECT_EQ(rt.peek(&g_cell), 2u);
}

TEST(AdmissionTest, CollapsedSuccessEwmaOpensGate)
{
    RuntimeConfig cfg;
    cfg.admission = testGate();
    TmRuntime rt(kKind, cfg);
    ThreadCtx &ctx = rt.registerThread();
    g_cell = 0;

    // Drive the success EWMA (alpha = 1/16) below the enter watermark
    // with a train of failed-outcome samples, as a livelocking workload
    // would.
    ASSERT_NE(rt.admission(), nullptr);
    for (int i = 0; i < 64; ++i)
        rt.admission()->onOutcome(false);
    ASSERT_LT(rt.admission()->successEwmaBp(),
              cfg.admission.successEnterBp);

    TxnOptions opts;
    opts.allowShed = true;
    TxnOutcome out =
        rt.runWith(ctx, opts, [&](Txn &tx) { tx.store(&g_cell, 9); });
    EXPECT_EQ(out, TxnOutcome::kAdmissionShed);
    EXPECT_TRUE(rt.admission()->open());
    EXPECT_EQ(rt.peek(&g_cell), 0u);

    // Recovery: committed outcomes pull the EWMA back over the exit
    // watermark (shed transactions are never fed, so the probe-free
    // gate needs these external samples), then the streak closes it.
    for (int i = 0; i < 64; ++i)
        rt.admission()->onOutcome(true);
    out = rt.runWith(ctx, opts, [&](Txn &tx) { tx.store(&g_cell, 9); });
    EXPECT_EQ(out, TxnOutcome::kCommitted);
    EXPECT_EQ(rt.peek(&g_cell), 9u);
    EXPECT_FALSE(rt.admission()->open());
}

TEST(AdmissionTest, DisabledGateIsNoOp)
{
    TmRuntime rt(kKind); // Default config: admission disabled.
    ThreadCtx &ctx = rt.registerThread();
    g_cell = 0;

    EXPECT_EQ(rt.admission(), nullptr);
    // Even under both overload signals, everything is admitted and no
    // admission counter moves.
    fakeSerialDepth(rt, 64);
    rt.globals().killSwitch.cooldown.store(64,
                                           std::memory_order_relaxed);
    TxnOptions opts;
    opts.allowShed = true;
    TxnOutcome out =
        rt.runWith(ctx, opts, [&](Txn &tx) { tx.store(&g_cell, 3); });
    EXPECT_EQ(out, TxnOutcome::kCommitted);
    EXPECT_EQ(rt.peek(&g_cell), 3u);
    EXPECT_EQ(rt.stats().get(Counter::kAdmissionShed), 0u);
    EXPECT_EQ(rt.stats().get(Counter::kAdmissionQueuedTicks), 0u);
    rt.globals().killSwitch.cooldown.store(0, std::memory_order_relaxed);
    fakeSerialDepth(rt, 0);
}

} // namespace
} // namespace rhtm
