/**
 * @file
 * Exception-safe lifecycle tests: a user exception escaping a
 * transaction body must reach the caller exactly once, with every
 * coordination word released, the data rolled back, and the runtime
 * immediately reusable -- on every algorithm. Plus the deferred
 * commit/abort action hooks: FIFO commit handlers after commit only,
 * LIFO abort handlers per aborted attempt, flat nesting sharing one
 * log, and handler exceptions swallowed (docs/LIFECYCLE.md).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/api/runtime.h"
#include "src/core/fault_points.h"
#include "src/fault/schedules.h"
#include "tests/test_support.h"

namespace rhtm
{
namespace
{

/** A user exception type only the test knows about. */
struct BodyError
{
    int code;
};

alignas(64) uint64_t g_word;

/** Every coordination word must be free and every ticket served. */
void
expectCoordinationQuiescent(TmRuntime &rt, const char *algo)
{
    TmGlobals &g = rt.globals();
    EXPECT_FALSE(clockIsLocked(rt.peek(&g.clock)))
        << algo << ": clock lock leaked";
    EXPECT_EQ(rt.peek(&g.htmLock), 0u) << algo << ": HTM lock leaked";
    EXPECT_EQ(rt.peek(&g.fallbacks), 0u)
        << algo << ": fallback registration leaked";
    EXPECT_EQ(rt.peek(&g.serialLock), 0u)
        << algo << ": serial lock leaked";
    EXPECT_EQ(rt.peek(&g.globalLock), 0u)
        << algo << ": global lock leaked";
    EXPECT_EQ(rt.peek(&g.serialNextTicket), rt.peek(&g.serialServing))
        << algo << ": serial ticket imbalance";
    EXPECT_TRUE(g.watchdog.healthy())
        << algo << ": watchdog left unhealthy";
}

TEST(ExceptionLifecycleTest, ReachesCallerExactlyOnceOnEveryAlgorithm)
{
    for (AlgoKind kind : allAlgoKinds()) {
        const char *algo = algoKindName(kind);
        TmRuntime rt(kind);
        ThreadCtx &ctx = rt.registerThread();
        g_word = 5;

        unsigned caught = 0;
        int code = 0;
        try {
            rt.run(ctx, [&](Txn &tx) {
                tx.store(&g_word, tx.load(&g_word) + 1);
                throw BodyError{42};
            });
        } catch (const BodyError &e) {
            ++caught;
            code = e.code;
        }
        EXPECT_EQ(caught, 1u) << algo;
        EXPECT_EQ(code, 42) << algo;
        EXPECT_EQ(rt.peek(&g_word), 5u)
            << algo << ": aborted attempt's write survived";
        EXPECT_EQ(rt.stats().get(Counter::kUserExceptionAborts), 1u)
            << algo;
        expectCoordinationQuiescent(rt, algo);

        // The runtime must be immediately reusable on the same ctx.
        rt.run(ctx, [&](Txn &tx) {
            tx.store(&g_word, tx.load(&g_word) + 1);
        });
        EXPECT_EQ(rt.peek(&g_word), 6u) << algo;
        EXPECT_EQ(rt.stats().get(Counter::kOperations), 1u) << algo;
    }
}

TEST(ExceptionLifecycleTest, InjectedUserExceptionFiresDeterministically)
{
    for (AlgoKind kind : {AlgoKind::kRhNOrec, AlgoKind::kHybridNOrecLazy}) {
        const char *algo = algoKindName(kind);
        RuntimeConfig cfg;
        FaultRule rule;
        rule.site = FaultSite::kUserException;
        rule.kind = FaultKind::kAbortOther;
        rule.firstHit = 1;
        rule.maxFires = 1;
        cfg.fault.add(rule);
        TmRuntime rt(kind, cfg);
        ThreadCtx &ctx = rt.registerThread();
        g_word = 0;

        unsigned caught = 0;
        auto body = [&](Txn &tx) {
            userExceptionFaultPoint(ctx.injector());
            tx.store(&g_word, tx.load(&g_word) + 1);
        };
        try {
            rt.run(ctx, body);
        } catch (const InjectedUserException &) {
            ++caught;
        }
        EXPECT_EQ(caught, 1u) << algo;
        EXPECT_EQ(rt.peek(&g_word), 0u) << algo;
        ASSERT_NE(ctx.injector(), nullptr) << algo;
        EXPECT_EQ(ctx.injector()->fires(FaultSite::kUserException), 1u)
            << algo;

        // The rule is exhausted: the same body now commits.
        rt.run(ctx, body);
        EXPECT_EQ(rt.peek(&g_word), 1u) << algo;
        EXPECT_EQ(rt.stats().get(Counter::kUserExceptionAborts), 1u)
            << algo;
        expectCoordinationQuiescent(rt, algo);
    }
}

TEST(ExceptionLifecycleTest,
     IrrevocableTransactionThatThrowsReleasesTheGrant)
{
    for (AlgoKind kind : allAlgoKinds()) {
        const char *algo = algoKindName(kind);
        TmRuntime rt(kind);
        ThreadCtx &ctx = rt.registerThread();
        g_word = 0;

        unsigned effects = 0;
        unsigned caught = 0;
        try {
            rt.run(ctx, [&](Txn &tx) {
                tx.becomeIrrevocable();
                EXPECT_TRUE(tx.isIrrevocable()) << algo;
                ++effects;
                throw BodyError{7};
            });
        } catch (const BodyError &) {
            ++caught;
        }
        EXPECT_EQ(caught, 1u) << algo;
        EXPECT_EQ(effects, 1u)
            << algo << ": a granted upgrade must never replay";
        EXPECT_GE(rt.stats().get(Counter::kIrrevocableUpgrades), 1u)
            << algo;
        expectCoordinationQuiescent(rt, algo);

        rt.run(ctx, [&](Txn &tx) {
            tx.store(&g_word, tx.load(&g_word) + 1);
        });
        EXPECT_EQ(rt.peek(&g_word), 1u) << algo;
    }
}

TEST(ActionLogTest, CommitHandlersRunFifoAfterCommitOnly)
{
    TmRuntime rt(AlgoKind::kRhNOrec);
    ThreadCtx &ctx = rt.registerThread();
    g_word = 0;

    std::vector<int> order;
    rt.run(ctx, [&](Txn &tx) {
        tx.onCommit([&] { order.push_back(1); });
        tx.onCommit([&] { order.push_back(2); });
        tx.onCommit([&] { order.push_back(3); });
        // Deferred: nothing may run while the transaction is open.
        EXPECT_TRUE(order.empty());
        EXPECT_EQ(ctx.actions().pendingCommit(), 3u);
        tx.store(&g_word, 1);
    });
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(ctx.actions().pendingCommit(), 0u);
    EXPECT_EQ(rt.stats().get(Counter::kCommitActionsRun), 3u);
}

TEST(ActionLogTest, AbortHandlersRunLifoPerAbortedAttempt)
{
    TmRuntime rt(AlgoKind::kRhNOrec);
    ThreadCtx &ctx = rt.registerThread();

    std::vector<std::string> order;
    unsigned attempt = 0;
    rt.run(ctx, [&](Txn &tx) {
        if (++attempt == 1) {
            tx.onAbort([&] { order.push_back("A"); });
            tx.onAbort([&] { order.push_back("B"); });
            tx.retry();
        }
        // The committing attempt's abort handler must be discarded.
        tx.onAbort([&] { order.push_back("C"); });
    });
    EXPECT_EQ(order, (std::vector<std::string>{"B", "A"}))
        << "abort handlers unwind LIFO, once per aborted attempt";
    EXPECT_EQ(ctx.actions().pendingAbort(), 0u);
    EXPECT_EQ(rt.stats().get(Counter::kAbortActionsRun), 2u);
    EXPECT_EQ(rt.stats().get(Counter::kCommitActionsRun), 0u);
}

TEST(ActionLogTest, CommitHandlersAreDiscardedWhenTheBodyThrows)
{
    TmRuntime rt(AlgoKind::kHybridNOrec);
    ThreadCtx &ctx = rt.registerThread();

    bool commit_ran = false;
    bool abort_ran = false;
    EXPECT_THROW(rt.run(ctx,
                        [&](Txn &tx) {
                            tx.onCommit([&] { commit_ran = true; });
                            tx.onAbort([&] { abort_ran = true; });
                            throw BodyError{1};
                        }),
                 BodyError);
    EXPECT_FALSE(commit_ran)
        << "an aborted transaction must not run its commit handlers";
    EXPECT_TRUE(abort_ran);
    EXPECT_EQ(ctx.actions().pendingCommit(), 0u);
    EXPECT_EQ(ctx.actions().pendingAbort(), 0u);
}

TEST(ActionLogTest, HandlerExceptionsAreSwallowed)
{
    TmRuntime rt(AlgoKind::kNOrec);
    ThreadCtx &ctx = rt.registerThread();

    std::vector<int> order;
    rt.run(ctx, [&](Txn &tx) {
        tx.onCommit([&] {
            order.push_back(1);
            throw std::runtime_error("late");
        });
        tx.onCommit([&] { order.push_back(2); });
    });
    // Reaching here at all means the handler exception was contained;
    // the later handler must still have run.
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(rt.stats().get(Counter::kCommitActionsRun), 2u);
}

TEST(ActionLogTest, FlatNestedRunSharesTheEnclosingLog)
{
    TmRuntime rt(AlgoKind::kRhNOrec);
    ThreadCtx &ctx = rt.registerThread();

    std::vector<int> order;
    rt.run(ctx, [&](Txn &outer) {
        outer.onCommit([&] { order.push_back(1); });
        rt.run(ctx, [&](Txn &inner) {
            inner.onCommit([&] { order.push_back(2); });
        });
        // The inner run() joined this transaction: its handler is
        // queued, not run, until the enclosing commit linearizes.
        EXPECT_TRUE(order.empty());
        EXPECT_EQ(ctx.actions().pendingCommit(), 2u);
    });
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ExceptionLifecycleTest, ConservationHoldsUnderExceptionChaos)
{
    // Multi-threaded soak: under the irrevocable-storm schedule every
    // body runs through the kUserException fault point, so exceptions
    // unwind live transactions on several threads at once. The counter
    // must equal exactly the committed run() calls, and no coordination
    // word may leak.
    RuntimeConfig cfg;
    ASSERT_TRUE(makeChaosSchedule("irrevocable-storm", 11, cfg.fault));
    cfg.retry.stallBudgetTicks = 512;
    cfg.retry.stallYieldPhase = 32;
    cfg.retry.stallSleepMinUs = 1;
    cfg.retry.stallSleepMaxUs = 100;
    TmRuntime rt(AlgoKind::kRhNOrec, cfg);

    constexpr unsigned kThreads = 4;
    constexpr unsigned kIters = 30;
    g_word = 0;
    std::atomic<uint64_t> committed{0};
    std::atomic<uint64_t> exceptions{0};
    test::runThreads(rt, kThreads, [&](unsigned, ThreadCtx &ctx) {
        for (unsigned i = 0; i < kIters; ++i) {
            try {
                rt.run(ctx, [&](Txn &tx) {
                    userExceptionFaultPoint(ctx.injector());
                    tx.store(&g_word, tx.load(&g_word) + 1);
                });
                committed.fetch_add(1);
            } catch (const InjectedUserException &) {
                exceptions.fetch_add(1);
            }
        }
    });

    EXPECT_EQ(committed.load() + exceptions.load(),
              uint64_t(kThreads) * kIters);
    EXPECT_EQ(rt.peek(&g_word), committed.load())
        << "an unwound body must contribute nothing";
    expectCoordinationQuiescent(rt, "rh-norec");
}

} // namespace
} // namespace rhtm
