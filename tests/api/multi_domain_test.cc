/**
 * @file
 * Instance-scoped domain tests: one process hosting several TmRuntime
 * instances must give each its own coordination domain -- clock,
 * locks, kill switch, stats -- with zero cross-talk. This is the
 * foundation the sharded store builds on (docs/STORE.md).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "src/api/runtime.h"
#include "tests/test_support.h"

namespace rhtm
{
namespace
{

class MultiDomainTest : public ::testing::TestWithParam<AlgoKind>
{
};

TEST_P(MultiDomainTest, DomainIdsAreProcessUnique)
{
    TmRuntime a(GetParam());
    TmRuntime b(GetParam());
    TmRuntime c(GetParam());
    std::set<uint64_t> ids{a.domain().id(), b.domain().id(),
                           c.domain().id()};
    EXPECT_EQ(ids.size(), 3u);
    // Construction order fixes the cross-domain lock order.
    EXPECT_LT(a.domain().id(), b.domain().id());
    EXPECT_LT(b.domain().id(), c.domain().id());
}

TEST_P(MultiDomainTest, ClockAdvancesOnlyInTheCommittingDomain)
{
    TmRuntime active(GetParam());
    TmRuntime idle(GetParam());
    const uint64_t idleClockBefore = idle.globals().clock;

    alignas(8) uint64_t word = 0;
    ThreadCtx &ctx = active.registerThread();
    for (int i = 0; i < 32; ++i)
        active.run(ctx,
                   [&](Txn &tx) { tx.store(&word, tx.load(&word) + 1); });

    EXPECT_EQ(active.peek(&word), 32u);
    // The idle domain's coordination words never moved.
    EXPECT_EQ(idle.globals().clock, idleClockBefore);
    EXPECT_EQ(idle.globals().serialNextTicket, 0u);
    EXPECT_EQ(idle.globals().htmLock, 0u);
    EXPECT_EQ(idle.stats().operations(), 0u);
    EXPECT_EQ(active.stats().operations(), 32u);
}

TEST_P(MultiDomainTest, KillSwitchStateIsPerDomain)
{
    TmRuntime a(GetParam());
    TmRuntime b(GetParam());
    a.globals().killSwitch.consecutiveFailures.store(
        100, std::memory_order_relaxed);
    a.globals().killSwitch.cooldown.store(5, std::memory_order_relaxed);
    EXPECT_EQ(b.globals().killSwitch.consecutiveFailures.load(
                  std::memory_order_relaxed),
              0u);
    EXPECT_FALSE(b.globals().killSwitch.tripped());
    EXPECT_TRUE(a.globals().killSwitch.tripped());
}

TEST_P(MultiDomainTest, ConcurrentDomainsCommitIndependently)
{
    TmRuntime a(GetParam());
    TmRuntime b(GetParam());
    alignas(8) uint64_t wordA = 0;
    alignas(8) uint64_t wordB = 0;
    ThreadCtx &ctxA = a.registerThread();
    ThreadCtx &ctxB = b.registerThread();
    constexpr int kOps = 200;

    std::thread ta([&] {
        for (int i = 0; i < kOps; ++i)
            a.run(ctxA, [&](Txn &tx) {
                tx.store(&wordA, tx.load(&wordA) + 1);
            });
    });
    std::thread tb([&] {
        for (int i = 0; i < kOps; ++i)
            b.run(ctxB, [&](Txn &tx) {
                tx.store(&wordB, tx.load(&wordB) + 2);
            });
    });
    ta.join();
    tb.join();

    EXPECT_EQ(a.peek(&wordA), static_cast<uint64_t>(kOps));
    EXPECT_EQ(b.peek(&wordB), static_cast<uint64_t>(2 * kOps));
    // Each domain counted exactly its own operations.
    EXPECT_EQ(a.stats().operations(), static_cast<uint64_t>(kOps));
    EXPECT_EQ(b.stats().operations(), static_cast<uint64_t>(kOps));
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, MultiDomainTest, ::testing::ValuesIn(allAlgoKinds()),
    [](const ::testing::TestParamInfo<AlgoKind> &info) {
        std::string name = algoKindName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace rhtm
