/**
 * @file
 * Cross-algorithm behavioural tests: every TM algorithm must satisfy
 * the same transactional contract. Parameterized over all six kinds
 * the paper evaluates.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/api/runtime.h"
#include "tests/test_support.h"

namespace rhtm
{
namespace
{

class AlgoTest : public ::testing::TestWithParam<AlgoKind>
{
  protected:
    AlgoTest() : rt(GetParam()) {}

    TmRuntime rt;
};

TEST_P(AlgoTest, SingleIncrement)
{
    alignas(8) uint64_t counter = 0;
    ThreadCtx &ctx = rt.registerThread();
    rt.run(ctx, [&](Txn &tx) { tx.store(&counter, tx.load(&counter) + 1); });
    EXPECT_EQ(rt.peek(&counter), 1u);
    EXPECT_EQ(rt.stats().operations(), 1u);
}

TEST_P(AlgoTest, ReadYourOwnWrite)
{
    alignas(8) uint64_t word = 5;
    ThreadCtx &ctx = rt.registerThread();
    rt.run(ctx, [&](Txn &tx) {
        tx.store(&word, 10);
        EXPECT_EQ(tx.load(&word), 10u);
        tx.store(&word, 20);
        EXPECT_EQ(tx.load(&word), 20u);
    });
    EXPECT_EQ(rt.peek(&word), 20u);
}

TEST_P(AlgoTest, ReadOnlyTransaction)
{
    alignas(8) uint64_t word = 123;
    ThreadCtx &ctx = rt.registerThread();
    uint64_t seen = 0;
    rt.run(ctx, [&](Txn &tx) { seen = tx.load(&word); },
           TxnHint::kReadOnly);
    EXPECT_EQ(seen, 123u);
}

TEST_P(AlgoTest, ManySequentialTransactions)
{
    alignas(8) uint64_t counter = 0;
    ThreadCtx &ctx = rt.registerThread();
    for (int i = 0; i < 1000; ++i) {
        rt.run(ctx,
               [&](Txn &tx) { tx.store(&counter, tx.load(&counter) + 1); });
    }
    EXPECT_EQ(rt.peek(&counter), 1000u);
    EXPECT_EQ(rt.stats().operations(), 1000u);
}

TEST_P(AlgoTest, UserExceptionAbortsAndPropagates)
{
    if (GetParam() == AlgoKind::kLockElision) {
        // The serial lock-elision path writes in place and cannot roll
        // back; the fast path can. Only assert the fast-path behaviour
        // by keeping the transaction conflict-free (first attempt
        // stays in hardware).
    }
    alignas(8) uint64_t word = 1;
    ThreadCtx &ctx = rt.registerThread();
    EXPECT_THROW(
        rt.run(ctx,
               [&](Txn &tx) {
                   tx.store(&word, 99);
                   throw std::runtime_error("user abort");
               }),
        std::runtime_error);
    EXPECT_EQ(rt.peek(&word), 1u) << "aborted write leaked";
    // The runtime must be usable afterwards.
    rt.run(ctx, [&](Txn &tx) { tx.store(&word, 2); });
    EXPECT_EQ(rt.peek(&word), 2u);
}

TEST_P(AlgoTest, UserRetryReexecutesBody)
{
    if (GetParam() == AlgoKind::kLockElision)
        GTEST_SKIP() << "retry() is not rollback-safe on an elided lock";
    alignas(8) uint64_t word = 0;
    ThreadCtx &ctx = rt.registerThread();
    int attempts = 0;
    rt.run(ctx, [&](Txn &tx) {
        tx.store(&word, tx.load(&word) + 1);
        if (++attempts < 3)
            tx.retry();
    });
    EXPECT_EQ(attempts, 3);
    EXPECT_EQ(rt.peek(&word), 1u)
        << "aborted attempts must not accumulate";
}

TEST_P(AlgoTest, NestedRunFlattensIntoEnclosingTransaction)
{
    alignas(8) uint64_t a = 0;
    alignas(8) uint64_t b = 0;
    ThreadCtx &ctx = rt.registerThread();
    rt.run(ctx, [&](Txn &tx) {
        tx.store(&a, 1);
        // A library helper that opens its own transaction: flattens.
        rt.run(ctx, [&](Txn &inner) { inner.store(&b, 2); });
        EXPECT_EQ(tx.load(&b), 2u)
            << "the nested write belongs to the same transaction";
    });
    EXPECT_EQ(rt.peek(&a), 1u);
    EXPECT_EQ(rt.peek(&b), 2u);
    EXPECT_EQ(rt.stats().operations(), 1u)
        << "a flattened nest is one transaction, not two";
}

TEST_P(AlgoTest, NestedAbortRollsBackTheWholeTransaction)
{
    if (GetParam() == AlgoKind::kLockElision)
        GTEST_SKIP() << "serial lock elision cannot roll back";
    alignas(8) uint64_t a = 0;
    alignas(8) uint64_t b = 0;
    ThreadCtx &ctx = rt.registerThread();
    EXPECT_THROW(
        rt.run(ctx,
               [&](Txn &tx) {
                   tx.store(&a, 1);
                   rt.run(ctx, [&](Txn &inner) {
                       inner.store(&b, 2);
                       throw std::runtime_error("inner abort");
                   });
               }),
        std::runtime_error);
    EXPECT_EQ(rt.peek(&a), 0u) << "flat nesting: all or nothing";
    EXPECT_EQ(rt.peek(&b), 0u);
    // The runtime stays usable.
    rt.run(ctx, [&](Txn &tx) { tx.store(&a, 5); });
    EXPECT_EQ(rt.peek(&a), 5u);
}

TEST_P(AlgoTest, TransactionalAllocSurvivesCommit)
{
    struct Node
    {
        uint64_t value;
        Node *next;
    };
    alignas(8) Node *head = nullptr;
    ThreadCtx &ctx = rt.registerThread();
    rt.run(ctx, [&](Txn &tx) {
        Node *n = tx.allocObject<Node>();
        tx.store(&n->value, 7);
        tx.storePtr(&n->next, static_cast<Node *>(nullptr));
        tx.storePtr(&head, n);
    });
    ASSERT_NE(head, nullptr);
    EXPECT_EQ(rt.peek(&head->value), 7u);
    rt.run(ctx, [&](Txn &tx) {
        Node *n = tx.loadPtr(&head);
        tx.storePtr(&head, static_cast<Node *>(nullptr));
        tx.freeObject(n);
    });
    EXPECT_EQ(head, nullptr);
    rt.memory().drainAll();
}

TEST_P(AlgoTest, ConcurrentCountersAddUp)
{
    constexpr unsigned kThreads = 4;
    constexpr unsigned kIters = 2000;
    alignas(64) uint64_t counter = 0;
    test::runThreads(rt, kThreads, [&](unsigned, ThreadCtx &ctx) {
        for (unsigned i = 0; i < kIters; ++i) {
            rt.run(ctx, [&](Txn &tx) {
                tx.store(&counter, tx.load(&counter) + 1);
            });
        }
    });
    EXPECT_EQ(rt.peek(&counter), uint64_t(kThreads) * kIters);
    EXPECT_EQ(rt.stats().operations(), uint64_t(kThreads) * kIters);
}

TEST_P(AlgoTest, TransfersConserveTotal)
{
    constexpr unsigned kThreads = 4;
    constexpr unsigned kIters = 1500;
    constexpr unsigned kAccounts = 64;
    struct alignas(64) Account
    {
        uint64_t balance;
    };
    std::vector<Account> accounts(kAccounts);
    for (auto &a : accounts)
        a.balance = 100;

    std::atomic<uint64_t> opacity_violations{0};
    test::runThreads(rt, kThreads, [&](unsigned t, ThreadCtx &ctx) {
        Rng rng(t + 1);
        for (unsigned i = 0; i < kIters; ++i) {
            unsigned from = rng.nextBounded(kAccounts);
            unsigned to = rng.nextBounded(kAccounts);
            if (rng.nextPercent(20)) {
                // Reader: the total must be invariant *inside* the
                // transaction (opacity: no intermediate sums).
                rt.run(ctx, [&](Txn &tx) {
                    uint64_t sum = 0;
                    for (auto &a : accounts)
                        sum += tx.load(&a.balance);
                    if (sum != uint64_t(kAccounts) * 100)
                        opacity_violations.fetch_add(1);
                });
            } else {
                rt.run(ctx, [&](Txn &tx) {
                    uint64_t f = tx.load(&accounts[from].balance);
                    uint64_t g = tx.load(&accounts[to].balance);
                    if (f > 0 && from != to) {
                        tx.store(&accounts[from].balance, f - 1);
                        tx.store(&accounts[to].balance, g + 1);
                    }
                });
            }
        }
    });
    uint64_t total = 0;
    for (auto &a : accounts)
        total += rt.peek(&a.balance);
    EXPECT_EQ(total, uint64_t(kAccounts) * 100);
    EXPECT_EQ(opacity_violations.load(), 0u);
}

TEST_P(AlgoTest, PrivatizationSafety)
{
    if (GetParam() == AlgoKind::kTl2 ||
        GetParam() == AlgoKind::kRhTl2) {
        GTEST_SKIP() << "the TL2 family does not guarantee "
                        "privatization (paper Section 1.2)";
    }
    struct alignas(64) Box
    {
        uint64_t value;
    };
    constexpr unsigned kRounds = 200;
    constexpr unsigned kMutators = 3;

    alignas(64) Box *shared_box = nullptr;
    std::vector<Box> boxes(kRounds);
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> violations{0};

    test::runThreads(rt, kMutators + 1, [&](unsigned t, ThreadCtx &ctx) {
        if (t == 0) {
            // Privatizer. (Box accesses after privatization use
            // peek/poke -- still non-transactional, but race-free
            // against doomed readers under the C++ memory model.)
            for (unsigned r = 0; r < kRounds; ++r) {
                rt.poke(&boxes[r].value, 0);
                rt.run(ctx, [&](Txn &tx) {
                    tx.storePtr(&shared_box, &boxes[r]);
                });
                // Let mutators hammer the box transactionally.
                for (volatile int spin = 0; spin < 2000; ++spin) {
                }
                // Privatize: detach the box transactionally...
                rt.run(ctx, [&](Txn &tx) {
                    tx.storePtr(&shared_box, static_cast<Box *>(nullptr));
                });
                // ...then access it non-transactionally. No concurrent
                // transactional write may land after this point.
                uint64_t snapshot = rt.peek(&boxes[r].value);
                rt.poke(&boxes[r].value, snapshot + 1000000);
                for (volatile int spin = 0; spin < 2000; ++spin) {
                }
                if (rt.peek(&boxes[r].value) != snapshot + 1000000)
                    violations.fetch_add(1);
            }
            stop.store(true);
        } else {
            // Mutators: transactionally increment through the pointer.
            while (!stop.load(std::memory_order_relaxed)) {
                rt.run(ctx, [&](Txn &tx) {
                    Box *b = tx.loadPtr(&shared_box);
                    if (b)
                        tx.store(&b->value, tx.load(&b->value) + 1);
                });
            }
        }
    });
    EXPECT_EQ(violations.load(), 0u);
}

class HtmAlgoTest : public ::testing::TestWithParam<AlgoKind>
{
};

TEST_P(HtmAlgoTest, InjectedAbortStressKeepsConsistency)
{
    // Regression coverage for abort-path bugs (stale undo replay,
    // leaked locks): run a transfer workload while every hardware
    // transaction faces a high injected abort rate, forcing constant
    // traffic through every fallback path.
    RuntimeConfig cfg;
    cfg.htm.randomAbortProb = 2e-3;
    TmRuntime rt(GetParam(), cfg);

    constexpr unsigned kThreads = 4;
    constexpr unsigned kIters = 1200;
    constexpr unsigned kAccounts = 32;
    struct alignas(64) Account
    {
        uint64_t balance;
    };
    std::vector<Account> accounts(kAccounts);
    for (auto &a : accounts)
        a.balance = 100;

    std::atomic<uint64_t> opacity_violations{0};
    test::runThreads(rt, kThreads, [&](unsigned t, ThreadCtx &ctx) {
        Rng rng(t + 11);
        for (unsigned i = 0; i < kIters; ++i) {
            unsigned from = rng.nextBounded(kAccounts);
            unsigned to = rng.nextBounded(kAccounts);
            if (rng.nextPercent(25)) {
                rt.run(ctx, [&](Txn &tx) {
                    uint64_t sum = 0;
                    for (auto &a : accounts)
                        sum += tx.load(&a.balance);
                    if (sum != uint64_t(kAccounts) * 100)
                        opacity_violations.fetch_add(1);
                });
            } else {
                rt.run(ctx, [&](Txn &tx) {
                    uint64_t f = tx.load(&accounts[from].balance);
                    uint64_t g = tx.load(&accounts[to].balance);
                    if (f > 0 && from != to) {
                        tx.store(&accounts[from].balance, f - 1);
                        tx.store(&accounts[to].balance, g + 1);
                    }
                });
            }
        }
    });
    uint64_t total = 0;
    for (auto &a : accounts)
        total += rt.peek(&a.balance);
    EXPECT_EQ(total, uint64_t(kAccounts) * 100);
    EXPECT_EQ(opacity_violations.load(), 0u);
    // The injection must actually have exercised the fallback paths.
    EXPECT_GT(rt.stats().get(Counter::kFallbacks), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    HtmBackedAlgorithms, HtmAlgoTest,
    ::testing::Values(AlgoKind::kLockElision, AlgoKind::kHybridNOrec,
                      AlgoKind::kHybridNOrecLazy, AlgoKind::kRhNOrec,
                      AlgoKind::kRhTl2),
    [](const ::testing::TestParamInfo<AlgoKind> &info) {
        std::string name = algoKindName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST_P(AlgoTest, StatsReportCommits)
{
    alignas(8) uint64_t word = 0;
    ThreadCtx &ctx = rt.registerThread();
    for (int i = 0; i < 100; ++i)
        rt.run(ctx, [&](Txn &tx) { tx.store(&word, i); });
    StatsSummary s = rt.stats();
    EXPECT_EQ(s.operations(), 100u);
    uint64_t commits = s.get(Counter::kCommitsFastPath) +
                       s.get(Counter::kCommitsMixedPath) +
                       s.get(Counter::kCommitsSoftwarePath) +
                       s.get(Counter::kCommitsSerialPath);
    EXPECT_EQ(commits, 100u) << "every operation commits on some path";
}

TEST(AlgoKindNamesTest, NameStringRoundTripCoversEveryKind)
{
    // The registry, the CLI parser and the CSV emitter all key on the
    // canonical names; a kind that cannot round-trip through its name
    // silently drops out of --algos=all sweeps and bench summaries.
    const std::vector<AlgoKind> &kinds = allAlgoKinds();
    EXPECT_EQ(kinds.size(), 8u) << "the paper evaluates eight systems";
    std::set<std::string> seen;
    for (AlgoKind kind : kinds) {
        const char *name = algoKindName(kind);
        ASSERT_NE(name, nullptr);
        EXPECT_NE(std::string(name), "unknown");
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate algorithm name: " << name;
        AlgoKind parsed;
        ASSERT_TRUE(algoKindFromString(name, parsed)) << name;
        EXPECT_EQ(parsed, kind) << name;
    }
    AlgoKind out;
    EXPECT_FALSE(algoKindFromString("", out));
    EXPECT_FALSE(algoKindFromString("no-such-algo", out));
    EXPECT_FALSE(algoKindFromString("NOREC", out))
        << "names are case-sensitive";
    EXPECT_FALSE(algoKindFromString("norec ", out))
        << "names must match exactly, no trimming";
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, AlgoTest,
    ::testing::Values(AlgoKind::kLockElision, AlgoKind::kNOrec,
                      AlgoKind::kNOrecLazy, AlgoKind::kTl2,
                      AlgoKind::kHybridNOrec, AlgoKind::kHybridNOrecLazy,
                      AlgoKind::kRhNOrec, AlgoKind::kRhTl2),
    [](const ::testing::TestParamInfo<AlgoKind> &info) {
        std::string name = algoKindName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace rhtm
