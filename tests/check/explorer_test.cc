/**
 * @file
 * Interleaving-explorer acceptance tests (docs/CHECKING.md): the
 * bounded-exhaustive DFS coverage gate (>= 1000 distinct write-skew
 * schedules per AlgoKind), sleep-set reduction actually reducing,
 * the curated program matrix passing the serializability/opacity
 * checker under every algorithm, and per-run state isolation via
 * TmRuntime::resetForTest().
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/api/runtime.h"
#include "src/check/explorer.h"
#include "src/check/program.h"

namespace rhtm::check
{
namespace
{

std::string
describeFailure(const ExploreResult &res)
{
    std::string out = "token=" + res.failure.token;
    if (!res.failure.completed)
        out += " [step-limit]";
    if (!res.failure.invariantOk)
        out += " invariant: " + res.failure.invariantWhy;
    if (!res.failure.check.ok())
        out += std::string(" checker: ") +
               checkVerdictName(res.failure.check.verdict) + ": " +
               res.failure.check.detail;
    return out;
}

/** The acceptance gate: >= 1000 distinct schedules of the 2-thread
 *  write-skew program per kind, every one passing the checker. */
TEST(ExplorerDfsTest, WriteSkewExploresAThousandDistinctSchedules)
{
    CheckProgram program;
    ASSERT_TRUE(curatedProgram("write-skew", program));
    for (AlgoKind kind : allAlgoKinds()) {
        Explorer explorer(kind, program);
        ExploreOptions opts;
        opts.mode = ExploreMode::kDfs;
        opts.runs = 1000;
        opts.dfsSleepSets = false; // Count raw schedules, unreduced.
        ExploreResult res = explorer.explore(opts);
        EXPECT_FALSE(res.failed)
            << algoKindName(kind) << ": " << describeFailure(res);
        EXPECT_GE(res.distinct, 1000u) << algoKindName(kind);
    }
}

TEST(ExplorerDfsTest, SleepSetsExhaustStrictlyFewerSchedules)
{
    CheckProgram program;
    ASSERT_TRUE(curatedProgram("write-skew", program));
    // Fully-hardware lock elision has the smallest tree: reduction
    // must exhaust it, below the unreduced count, with no failure.
    Explorer explorer(AlgoKind::kLockElision, program);
    ExploreOptions opts;
    opts.mode = ExploreMode::kDfs;
    opts.runs = 100000;
    ExploreResult reduced = explorer.explore(opts);
    EXPECT_TRUE(reduced.exhausted);
    EXPECT_FALSE(reduced.failed) << describeFailure(reduced);
    EXPECT_GT(reduced.distinct, 0u);

    opts.dfsSleepSets = false;
    opts.runs = reduced.distinct + 1;
    ExploreResult raw = explorer.explore(opts);
    EXPECT_FALSE(raw.failed) << describeFailure(raw);
    EXPECT_GT(raw.distinct, reduced.distinct);
}

/** Every curated program passes the checker under every kind. */
TEST(ExplorerMatrixTest, CuratedProgramsPassUnderEveryKind)
{
    for (AlgoKind kind : allAlgoKinds()) {
        for (const CheckProgram &program : curatedPrograms()) {
            Explorer explorer(kind, program);
            ExploreOptions opts;
            opts.mode = ExploreMode::kRandom;
            opts.runs = 40;
            ExploreResult res = explorer.explore(opts);
            EXPECT_FALSE(res.failed)
                << algoKindName(kind) << '/' << program.name << ": "
                << describeFailure(res);
            EXPECT_GT(res.distinct, 1u)
                << algoKindName(kind) << '/' << program.name;
        }
    }
}

TEST(ExplorerMatrixTest, PctModePassesOnTheRaceHeavyPrograms)
{
    for (AlgoKind kind : allAlgoKinds()) {
        for (const char *name : {"write-skew", "irrevocable-upgrade"}) {
            CheckProgram program;
            ASSERT_TRUE(curatedProgram(name, program));
            Explorer explorer(kind, program);
            ExploreOptions opts;
            opts.mode = ExploreMode::kPct;
            opts.runs = 64;
            opts.pctDepth = 3;
            ExploreResult res = explorer.explore(opts);
            EXPECT_FALSE(res.failed)
                << algoKindName(kind) << '/' << name << ": "
                << describeFailure(res);
        }
    }
}

/** resetForTest() isolation: one Explorer, repeated explorations,
 *  identical outcomes -- no state bleeds between runs. */
TEST(ExplorerIsolationTest, RepeatedExplorationsAreIdentical)
{
    CheckProgram program;
    ASSERT_TRUE(curatedProgram("postfix-race", program));
    Explorer explorer(AlgoKind::kRhNOrec, program);
    ExploreOptions opts;
    opts.mode = ExploreMode::kRandom;
    opts.runs = 32;
    opts.seed = 11;
    ExploreResult first = explorer.explore(opts);
    ExploreResult second = explorer.explore(opts);
    EXPECT_FALSE(first.failed) << describeFailure(first);
    EXPECT_FALSE(second.failed) << describeFailure(second);
    EXPECT_EQ(first.distinct, second.distinct);
    EXPECT_EQ(first.runs, second.runs);
}

} // namespace
} // namespace rhtm::check
