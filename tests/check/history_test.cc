/**
 * @file
 * Self-tests for the serializability/opacity history checker against
 * golden hand-written histories (docs/CHECKING.md): known-serializable
 * and known-non-serializable committed sets, the classic NOrec zombie
 * read (an aborted attempt observing a mixed snapshot), and malformed
 * event streams.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "src/check/history.h"

namespace rhtm::check
{
namespace
{

TEST(HistoryCheckerTest, EmptyHistoryIsOk)
{
    History h;
    CheckResult res = checkHistory(h, {});
    EXPECT_TRUE(res.ok());
    EXPECT_TRUE(res.witnessOrder.empty());
}

TEST(HistoryCheckerTest, SerialReadAfterWriteIsOk)
{
    History h;
    h.push(0, HistKind::kBegin);
    h.push(0, HistKind::kAttempt);
    h.push(0, HistKind::kWrite, 0, 1);
    h.push(0, HistKind::kCommit);
    h.push(1, HistKind::kBegin);
    h.push(1, HistKind::kAttempt);
    h.push(1, HistKind::kRead, 0, 1);
    h.push(1, HistKind::kCommit);
    CheckResult res = checkHistory(h, {0});
    EXPECT_TRUE(res.ok()) << res.detail;
    ASSERT_EQ(res.witnessOrder.size(), 2u);
    // Real time forces the writer first.
    EXPECT_EQ(res.witnessOrder[0], 0u);
    EXPECT_EQ(res.witnessOrder[1], 1u);
}

TEST(HistoryCheckerTest, InterleavedSnapshotReadersAreOk)
{
    // Both readers see the pre-write snapshot while the writer is
    // live: serializable with the readers ordered first.
    History h;
    h.push(0, HistKind::kBegin);
    h.push(0, HistKind::kAttempt);
    h.push(1, HistKind::kBegin);
    h.push(1, HistKind::kAttempt);
    h.push(1, HistKind::kRead, 0, 0);
    h.push(0, HistKind::kWrite, 0, 7);
    h.push(1, HistKind::kRead, 1, 0);
    h.push(0, HistKind::kWrite, 1, 7);
    h.push(0, HistKind::kCommit);
    h.push(1, HistKind::kCommit);
    CheckResult res = checkHistory(h, {0, 0});
    EXPECT_TRUE(res.ok()) << res.detail;
}

TEST(HistoryCheckerTest, CommittedWriteSkewIsNotSerializable)
{
    // Both transactions read the OTHER variable's initial value and
    // commit: neither order replays both reads.
    History h;
    h.push(0, HistKind::kBegin);
    h.push(1, HistKind::kBegin);
    h.push(0, HistKind::kAttempt);
    h.push(1, HistKind::kAttempt);
    h.push(0, HistKind::kRead, 1, 0);
    h.push(1, HistKind::kRead, 0, 0);
    h.push(0, HistKind::kWrite, 0, 1);
    h.push(1, HistKind::kWrite, 1, 1);
    h.push(0, HistKind::kCommit);
    h.push(1, HistKind::kCommit);
    CheckResult res = checkHistory(h, {0, 0});
    EXPECT_EQ(res.verdict, CheckVerdict::kNotSerializable);
    EXPECT_FALSE(res.detail.empty());
}

TEST(HistoryCheckerTest, NorecZombieReadIsAnOpacityViolation)
{
    // The classic NOrec zombie: T1 commits v0=1, v1=1 atomically; an
    // aborted T0 attempt observed v0 AFTER the commit but v1 from
    // BEFORE it. No serialization prefix explains {v0=1, v1=0}, so
    // even though the attempt aborted, opacity is violated.
    History h;
    h.push(1, HistKind::kBegin);
    h.push(1, HistKind::kAttempt);
    h.push(1, HistKind::kWrite, 0, 1);
    h.push(1, HistKind::kWrite, 1, 1);
    h.push(1, HistKind::kCommit);
    h.push(0, HistKind::kBegin);
    h.push(0, HistKind::kAttempt);
    h.push(0, HistKind::kRead, 0, 1);
    h.push(0, HistKind::kRead, 1, 0); // Impossible mixed snapshot.
    h.push(0, HistKind::kAttempt);    // Retry after the abort ...
    h.push(0, HistKind::kRead, 0, 1);
    h.push(0, HistKind::kRead, 1, 1); // ... sees a consistent state
    h.push(0, HistKind::kCommit);     // and commits.
    CheckResult res = checkHistory(h, {0, 0});
    EXPECT_EQ(res.verdict, CheckVerdict::kZombieRead);
    EXPECT_FALSE(res.detail.empty());
}

TEST(HistoryCheckerTest, AbortedPrefixOfACommitIsNotAZombie)
{
    // An aborted attempt that saw the PRE-commit state throughout is
    // a plain conflict abort, not an opacity violation.
    History h;
    h.push(0, HistKind::kBegin);
    h.push(0, HistKind::kAttempt);
    h.push(0, HistKind::kRead, 0, 0);
    h.push(0, HistKind::kRead, 1, 0);
    h.push(1, HistKind::kBegin);
    h.push(1, HistKind::kAttempt);
    h.push(1, HistKind::kWrite, 0, 1);
    h.push(1, HistKind::kWrite, 1, 1);
    h.push(1, HistKind::kCommit);
    h.push(0, HistKind::kAttempt);
    h.push(0, HistKind::kRead, 0, 1);
    h.push(0, HistKind::kRead, 1, 1);
    h.push(0, HistKind::kCommit);
    CheckResult res = checkHistory(h, {0, 0});
    EXPECT_TRUE(res.ok()) << res.detail;
}

TEST(HistoryCheckerTest, CommitWithoutBeginIsMalformed)
{
    History h;
    h.push(0, HistKind::kCommit);
    CheckResult res = checkHistory(h, {});
    EXPECT_EQ(res.verdict, CheckVerdict::kMalformed);
    EXPECT_FALSE(res.detail.empty());
}

TEST(HistoryCheckerTest, ReadOutsideAnAttemptIsMalformed)
{
    History h;
    h.push(0, HistKind::kBegin);
    h.push(0, HistKind::kRead, 0, 0); // No kAttempt yet.
    h.push(0, HistKind::kCommit);
    CheckResult res = checkHistory(h, {0});
    EXPECT_EQ(res.verdict, CheckVerdict::kMalformed);
}

TEST(HistoryTest, FormatIsStableOneLinePerEvent)
{
    History h;
    h.push(0, HistKind::kBegin);
    h.push(0, HistKind::kAttempt);
    h.push(0, HistKind::kRead, 1, 7);
    h.push(0, HistKind::kWrite, 2, 9);
    h.push(0, HistKind::kCommit);
    std::string text = h.format();
    EXPECT_NE(text.find("t0 read v1=7"), std::string::npos) << text;
    EXPECT_NE(text.find("t0 write v2=9"), std::string::npos) << text;
    EXPECT_EQ(static_cast<size_t>(
                  std::count(text.begin(), text.end(), '\n')),
              h.size());
}

} // namespace
} // namespace rhtm::check
