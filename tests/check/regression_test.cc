/**
 * @file
 * Reverted-fix regression programs (docs/CHECKING.md): three past bugs
 * ported into checker programs. Each must fail when its fix is
 * reverted -- with a minimized replay token that still fails -- and
 * pass with the fix in place. All run on kHybridNOrec, the kind the
 * original bugs shipped under.
 *
 * The minimized token may legitimately be EMPTY: for the two
 * schedule-independent bugs every prefix fails, and the empty prefix
 * is the honest minimum. What matters is that replaying the token
 * reproduces the failure.
 */

#include <gtest/gtest.h>

#include "src/api/runtime.h"
#include "src/check/explorer.h"
#include "src/check/program.h"

namespace rhtm::check
{
namespace
{

constexpr AlgoKind kKind = AlgoKind::kHybridNOrec;

TEST(RegressionTest, FirstTryBudgetBugFailsWhenReverted)
{
    // Schedule-independent: any schedule exposes the stuck score.
    Explorer broken(kKind, makeFirstTryBudgetProgram(true));
    ExploreOptions opts;
    opts.mode = ExploreMode::kRandom;
    opts.runs = 8;
    ExploreResult res = broken.explore(opts);
    ASSERT_TRUE(res.failed);
    EXPECT_FALSE(res.failure.invariantOk);
    EXPECT_FALSE(res.failure.invariantWhy.empty());
    // The minimized token must still reproduce the failure.
    RunOutcome re = broken.replay(res.minimizedToken);
    EXPECT_TRUE(re.failed()) << "minimized token no longer fails";

    Explorer fixed(kKind, makeFirstTryBudgetProgram(false));
    ExploreResult ok = fixed.explore(opts);
    EXPECT_FALSE(ok.failed)
        << ok.failure.invariantWhy << ' ' << ok.failure.check.detail;
}

TEST(RegressionTest, PolicySnapshotBugFailsWhenReverted)
{
    // Schedule-independent: the frozen policy snapshot ignores the
    // live budget change on every schedule.
    Explorer broken(kKind, makePolicySnapshotProgram(true));
    ExploreOptions opts;
    opts.mode = ExploreMode::kRandom;
    opts.runs = 8;
    ExploreResult res = broken.explore(opts);
    ASSERT_TRUE(res.failed);
    EXPECT_FALSE(res.failure.invariantOk);
    EXPECT_FALSE(res.failure.invariantWhy.empty());
    RunOutcome re = broken.replay(res.minimizedToken);
    EXPECT_TRUE(re.failed()) << "minimized token no longer fails";

    Explorer fixed(kKind, makePolicySnapshotProgram(false));
    ExploreResult ok = fixed.explore(opts);
    EXPECT_FALSE(ok.failed)
        << ok.failure.invariantWhy << ' ' << ok.failure.check.detail;
}

TEST(RegressionTest, DeadlineUnwindBugFailsWhenReverted)
{
    // Schedule-independent: the injected faults are keyed to thread
    // 0's own program order, so every schedule walks it through
    // fast-abort, slow-restart, and out at the attempt boundary with
    // its fallback registration still published.
    Explorer broken(kKind, makeDeadlineUnwindProgram(true));
    ExploreOptions opts;
    opts.mode = ExploreMode::kRandom;
    opts.runs = 8;
    ExploreResult res = broken.explore(opts);
    ASSERT_TRUE(res.failed);
    EXPECT_FALSE(res.failure.invariantOk);
    EXPECT_FALSE(res.failure.invariantWhy.empty());
    RunOutcome re = broken.replay(res.minimizedToken);
    EXPECT_TRUE(re.failed()) << "minimized token no longer fails";

    Explorer fixed(kKind, makeDeadlineUnwindProgram(false));
    ExploreResult ok = fixed.explore(opts);
    EXPECT_FALSE(ok.failed)
        << ok.failure.invariantWhy << ' ' << ok.failure.check.detail;
}

/**
 * The schedule-DEPENDENT one: only schedules that park the stale
 * decayer across the reopen and the prober's first failure expose the
 * wiped streak. Random walks essentially never find it; PCT with
 * depth 3 does (the pinned seed reaches it at run 18508).
 */
TEST(RegressionTest, KillSwitchStreakBugFailsUnderPctWhenReverted)
{
    Explorer broken(kKind, makeKillSwitchStreakProgram(true));
    ExploreOptions opts;
    opts.mode = ExploreMode::kPct;
    opts.seed = 1;
    opts.pctDepth = 3;
    opts.runs = 20000;
    opts.maxStepsPerRun = 3000;
    ExploreResult res = broken.explore(opts);
    ASSERT_TRUE(res.failed) << "PCT never reached the streak wipe";
    EXPECT_FALSE(res.failure.invariantOk);
    EXPECT_FALSE(res.failure.invariantWhy.empty());
    // This failure needs a real parked-decayer schedule, so the
    // minimized token cannot be empty here.
    EXPECT_FALSE(res.minimizedToken.empty());
    RunOutcome re = broken.replay(res.minimizedToken);
    EXPECT_TRUE(re.failed()) << "minimized token no longer fails";

    // The fix survives both the failing schedule and the same
    // exploration that found it.
    Explorer fixed(kKind, makeKillSwitchStreakProgram(false));
    RunOutcome fixedRe = fixed.replay(res.minimizedToken);
    EXPECT_FALSE(fixedRe.failed())
        << fixedRe.invariantWhy << ' ' << fixedRe.check.detail;
    ExploreResult ok = fixed.explore(opts);
    EXPECT_FALSE(ok.failed)
        << ok.failure.invariantWhy << ' ' << ok.failure.check.detail;
}

/**
 * Schedule-DEPENDENT: only interleavings that park the reader's
 * extension inside the writer's clock-held writeback window expose the
 * zombie read (docs/COMMIT_PATH.md front 3). Runs on the eager kinds
 * the extension ships on -- pure-STM NOrec and the hybrid, which the
 * program's scripted hardware aborts pin to the same software phase.
 */
TEST(RegressionTest, TsExtensionZombieFailsWhenReverted)
{
    for (AlgoKind kind : {AlgoKind::kNOrec, AlgoKind::kHybridNOrec}) {
        Explorer broken(kind, makeTsExtensionProgram(true));
        ExploreOptions opts;
        opts.mode = ExploreMode::kRandom;
        opts.seed = 1;
        opts.runs = 512;
        ExploreResult res = broken.explore(opts);
        ASSERT_TRUE(res.failed)
            << algoKindName(kind)
            << ": exploration never parked the reader mid-writeback";
        EXPECT_FALSE(res.failure.check.ok())
            << algoKindName(kind)
            << ": the zombie must fail the history checker";
        // A real mid-writeback schedule is required, so the minimized
        // token cannot be empty -- and must still reproduce.
        EXPECT_FALSE(res.minimizedToken.empty()) << algoKindName(kind);
        RunOutcome re = broken.replay(res.minimizedToken);
        EXPECT_TRUE(re.failed())
            << algoKindName(kind) << ": minimized token no longer fails";

        // The fix survives both the failing schedule and the same
        // exploration that found it.
        Explorer fixed(kind, makeTsExtensionProgram(false));
        RunOutcome fixedRe = fixed.replay(res.minimizedToken);
        EXPECT_FALSE(fixedRe.failed())
            << algoKindName(kind) << ": " << fixedRe.invariantWhy << ' '
            << fixedRe.check.detail;
        ExploreResult ok = fixed.explore(opts);
        EXPECT_FALSE(ok.failed)
            << algoKindName(kind) << ": " << ok.failure.invariantWhy
            << ' ' << ok.failure.check.detail;
    }
}

/**
 * The saturated-summary pathology: the universal collision must route
 * every extension through full revalidation (the invariant pins the
 * skip counter to zero) while the workload keeps committing correctly
 * on every explored schedule.
 */
TEST(RegressionTest, FilterCollisionNeverPassesTheSkip)
{
    for (AlgoKind kind :
         {AlgoKind::kNOrec, AlgoKind::kNOrecLazy, AlgoKind::kHybridNOrec,
          AlgoKind::kHybridNOrecLazy}) {
        Explorer ex(kind, makeFilterCollisionProgram());
        ExploreOptions opts;
        opts.mode = ExploreMode::kRandom;
        opts.seed = 3;
        opts.runs = 256;
        ExploreResult res = ex.explore(opts);
        EXPECT_FALSE(res.failed)
            << algoKindName(kind) << ": " << res.failure.invariantWhy
            << ' ' << res.failure.check.detail;
    }
}

} // namespace
} // namespace rhtm::check
