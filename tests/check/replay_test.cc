/**
 * @file
 * Replay-determinism tests (docs/CHECKING.md): a schedule token
 * re-executed many times must reproduce the identical schedule and
 * the byte-for-byte identical recorded history -- the property every
 * minimized failing token's value rests on.
 */

#include <gtest/gtest.h>

#include "src/api/runtime.h"
#include "src/check/explorer.h"
#include "src/check/program.h"

namespace rhtm::check
{
namespace
{

TEST(ReplayTest, TokenReplaysIdenticallyAHundredTimes)
{
    CheckProgram program;
    ASSERT_TRUE(curatedProgram("write-skew", program));
    Explorer explorer(AlgoKind::kRhNOrec, program);

    RunOutcome original = explorer.sample(42);
    ASSERT_TRUE(original.completed);
    ASSERT_FALSE(original.token.empty());
    ASSERT_FALSE(original.historyText.empty());

    for (int i = 0; i < 100; ++i) {
        RunOutcome re = explorer.replay(original.token);
        ASSERT_TRUE(re.completed) << "iteration " << i;
        EXPECT_EQ(re.token, original.token) << "iteration " << i;
        EXPECT_EQ(re.historyText, original.historyText)
            << "iteration " << i;
        EXPECT_EQ(re.steps, original.steps) << "iteration " << i;
    }
}

TEST(ReplayTest, DistinctSeedsReachDistinctSchedules)
{
    CheckProgram program;
    ASSERT_TRUE(curatedProgram("prefix-race", program));
    Explorer explorer(AlgoKind::kHybridNOrec, program);
    RunOutcome a = explorer.sample(1);
    RunOutcome b = explorer.sample(2);
    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(b.completed);
    // Overwhelmingly likely for a 3-thread program; pinned seeds make
    // it deterministic.
    EXPECT_NE(a.token, b.token);
}

TEST(ReplayTest, ReplayIsStableAcrossExplorerInstances)
{
    CheckProgram program;
    ASSERT_TRUE(curatedProgram("ro-snapshot", program));
    Explorer first(AlgoKind::kNOrec, program);
    RunOutcome original = first.sample(7);
    ASSERT_TRUE(original.completed);

    Explorer second(AlgoKind::kNOrec, program);
    RunOutcome re = second.replay(original.token);
    ASSERT_TRUE(re.completed);
    EXPECT_EQ(re.token, original.token);
    EXPECT_EQ(re.historyText, original.historyText);
}

} // namespace
} // namespace rhtm::check
