/**
 * @file
 * Cross-algorithm conformance suite for the composable engine: every
 * AlgoKind -- however it composes the shared protocol objects (undo
 * journal, redo buffer, value read log, commit seqlock) behind its
 * dispatch descriptors -- must present identical transactional
 * semantics. Four dimensions: opacity (no intermediate state is ever
 * observable inside a transaction), write visibility (commits publish
 * all-or-nothing), irrevocable upgrade (grant barrier plus
 * exactly-once side effects), and exception unwind (user exceptions
 * roll back the transaction and propagate). The multi-threaded
 * scenarios then repeat under the irrevocable-storm and stall-serial
 * chaos schedules so each policy composition is also exercised on its
 * degraded paths (serial escalation, pre-grant aborts, stretched
 * publish windows).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/api/runtime.h"
#include "src/fault/schedules.h"
#include "tests/test_support.h"

namespace rhtm
{
namespace
{

constexpr unsigned kAccounts = 32;
constexpr unsigned kWords = 8;

alignas(64) uint64_t g_word;
alignas(64) uint64_t g_words[kWords];

struct alignas(64) Account
{
    uint64_t balance;
};

/** Runtime config, optionally degraded by a named chaos schedule. */
RuntimeConfig
conformanceConfig(const char *schedule)
{
    RuntimeConfig cfg;
    if (schedule != nullptr) {
        EXPECT_TRUE(makeChaosSchedule(schedule, 11, cfg.fault))
            << "unknown schedule " << schedule;
        // Compress the watchdog timescale so scripted stalls resolve
        // within test time (same knobs as the progress suite).
        cfg.retry.stallBudgetTicks = 512;
        cfg.retry.stallYieldPhase = 32;
        cfg.retry.stallSleepMinUs = 1;
        cfg.retry.stallSleepMaxUs = 100;
    }
    return cfg;
}

/** Every coordination word free, every serial ticket served. */
void
expectQuiescent(TmRuntime &rt, const char *algo)
{
    TmGlobals &g = rt.globals();
    EXPECT_EQ(rt.peek(&g.htmLock), 0u) << algo << ": HTM lock leaked";
    EXPECT_EQ(rt.peek(&g.fallbacks), 0u)
        << algo << ": fallback registration leaked";
    EXPECT_EQ(rt.peek(&g.serialLock), 0u)
        << algo << ": serial lock leaked";
    EXPECT_EQ(rt.peek(&g.globalLock), 0u)
        << algo << ": global lock leaked";
    EXPECT_EQ(rt.peek(&g.serialNextTicket), rt.peek(&g.serialServing))
        << algo << ": serial ticket imbalance";
    EXPECT_TRUE(g.watchdog.healthy())
        << algo << ": watchdog left unhealthy";
}

/**
 * The opacity workhorse: transfers between accounts with invariant-sum
 * readers, optionally upgrading every eighth operation to
 * irrevocability. Asserts conservation, zero observed intermediate
 * sums, exactly-once side effects per granted upgrade, and a clean
 * (quiescent) runtime afterwards.
 */
void
runTransferScenario(AlgoKind kind, const char *schedule,
                    unsigned threads, unsigned iters,
                    bool with_upgrades,
                    const TmConfig *commit_path = nullptr)
{
    const char *algo = algoKindName(kind);
    RuntimeConfig cfg = conformanceConfig(schedule);
    if (commit_path != nullptr)
        cfg.commitPath = *commit_path;
    TmRuntime rt(kind, cfg);
    std::vector<Account> accounts(kAccounts);
    for (auto &a : accounts)
        a.balance = 100;

    std::atomic<uint64_t> opacity_violations{0};
    std::atomic<uint64_t> upgraded{0};
    std::atomic<uint64_t> effects{0};
    test::runThreads(rt, threads, [&](unsigned t, ThreadCtx &ctx) {
        Rng rng(t * 131 + 17);
        for (unsigned i = 0; i < iters; ++i) {
            unsigned from = rng.nextBounded(kAccounts);
            unsigned to = rng.nextBounded(kAccounts);
            bool upgrade = with_upgrades && (i % 8 == 0);
            if (!upgrade && rng.nextPercent(25)) {
                rt.run(ctx, [&](Txn &tx) {
                    uint64_t sum = 0;
                    for (auto &a : accounts)
                        sum += tx.load(&a.balance);
                    if (sum != uint64_t(kAccounts) * 100)
                        opacity_violations.fetch_add(1);
                });
            } else {
                rt.run(ctx, [&](Txn &tx) {
                    uint64_t f = tx.load(&accounts[from].balance);
                    uint64_t g = tx.load(&accounts[to].balance);
                    if (upgrade) {
                        tx.becomeIrrevocable();
                        effects.fetch_add(1);
                    }
                    if (f > 0 && from != to) {
                        tx.store(&accounts[from].balance, f - 1);
                        tx.store(&accounts[to].balance, g + 1);
                    }
                });
                if (upgrade)
                    upgraded.fetch_add(1);
            }
        }
    });

    uint64_t total = 0;
    for (auto &a : accounts)
        total += rt.peek(&a.balance);
    EXPECT_EQ(total, uint64_t(kAccounts) * 100)
        << algo << ": transfers must conserve the total";
    EXPECT_EQ(opacity_violations.load(), 0u)
        << algo << ": a reader observed an intermediate state";
    if (with_upgrades) {
        EXPECT_GT(upgraded.load(), 0u) << algo;
        EXPECT_EQ(effects.load(), upgraded.load())
            << algo << ": post-grant side effects replayed";
        EXPECT_EQ(rt.stats().get(Counter::kIrrevocableUpgrades),
                  upgraded.load())
            << algo << ": every grant must commit exactly once";
    }
    expectQuiescent(rt, algo);
}

class ConformanceTest : public ::testing::TestWithParam<AlgoKind>
{
  protected:
    const char *algo() const { return algoKindName(GetParam()); }
};

TEST_P(ConformanceTest, OpacityUnderConcurrentTransfers)
{
    runTransferScenario(GetParam(), nullptr, 4, 600, false);
}

TEST_P(ConformanceTest, CommitsPublishAllOrNothing)
{
    // A writer repeatedly moves all kWords words from round r to r+1
    // in one transaction; readers must only ever observe a uniform
    // array -- a torn commit shows up as mixed rounds.
    TmRuntime rt(GetParam());
    for (auto &w : g_words)
        w = 0;

    constexpr unsigned kRounds = 400;
    constexpr unsigned kReaders = 3;
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> torn{0};
    test::runThreads(rt, kReaders + 1, [&](unsigned t, ThreadCtx &ctx) {
        if (t == 0) {
            for (unsigned r = 1; r <= kRounds; ++r) {
                rt.run(ctx, [&](Txn &tx) {
                    for (auto &w : g_words)
                        tx.store(&w, r);
                });
            }
            stop.store(true, std::memory_order_release);
        } else {
            while (!stop.load(std::memory_order_relaxed)) {
                rt.run(ctx, [&](Txn &tx) {
                    uint64_t first = tx.load(&g_words[0]);
                    for (auto &w : g_words) {
                        if (tx.load(&w) != first)
                            torn.fetch_add(1);
                    }
                });
            }
        }
    });
    EXPECT_EQ(torn.load(), 0u)
        << algo() << ": a partially published write set was visible";
    for (auto &w : g_words)
        EXPECT_EQ(rt.peek(&w), uint64_t(kRounds)) << algo();
    expectQuiescent(rt, algo());
}

TEST_P(ConformanceTest, IrrevocableUpgradeGrantsExactlyOnce)
{
    TmRuntime rt(GetParam());
    ThreadCtx &ctx = rt.registerThread();
    g_word = 0;

    unsigned effects = 0;
    rt.run(ctx, [&](Txn &tx) {
        // Lock elision answers the upgrade request by replaying in
        // serial mode, where the global lock makes the body
        // irrevocable from its first statement -- so only the other
        // compositions start the (replayed) body revocable.
        if (GetParam() != AlgoKind::kLockElision)
            EXPECT_FALSE(tx.isIrrevocable()) << algo();
        tx.becomeIrrevocable();
        EXPECT_TRUE(tx.isIrrevocable()) << algo();
        tx.becomeIrrevocable(); // Idempotent on a granted transaction.
        ++effects;
        tx.store(&g_word, tx.load(&g_word) + 1);
    });
    EXPECT_EQ(effects, 1u)
        << algo() << ": the post-grant side effect must run once";
    EXPECT_EQ(rt.peek(&g_word), 1u) << algo();
    EXPECT_GE(rt.stats().get(Counter::kIrrevocableUpgrades), 1u)
        << algo();

    // Irrevocability is per-transaction: the next one starts revocable
    // and other threads can run transactions again.
    rt.run(ctx, [&](Txn &tx) {
        EXPECT_FALSE(tx.isIrrevocable()) << algo();
        tx.store(&g_word, tx.load(&g_word) + 1);
    });
    EXPECT_EQ(rt.peek(&g_word), 2u) << algo();
    expectQuiescent(rt, algo());
}

TEST_P(ConformanceTest, UserExceptionUnwindsAndPropagates)
{
    // Conflict-free and single-threaded, so even lock elision handles
    // it on its rollback-capable fast path.
    TmRuntime rt(GetParam());
    ThreadCtx &ctx = rt.registerThread();
    g_word = 1;

    EXPECT_THROW(rt.run(ctx,
                        [&](Txn &tx) {
                            tx.store(&g_word, 99);
                            throw std::runtime_error("user abort");
                        }),
                 std::runtime_error) << algo();
    EXPECT_EQ(rt.peek(&g_word), 1u) << algo() << ": aborted write leaked";

    // The unwind must leave the session reusable and the shared words
    // free -- a leaked lock would wedge this follow-up transaction.
    rt.run(ctx, [&](Txn &tx) { tx.store(&g_word, tx.load(&g_word) + 1); });
    EXPECT_EQ(rt.peek(&g_word), 2u) << algo();
    expectQuiescent(rt, algo());
}

// ----------------------------------------------------------------------
// Deadline / attempt-budget unwind (docs/OVERLOAD.md): a transaction
// that gives up must look exactly like a user-exception abort -- locks
// released, journals rolled back, onAbort fired exactly once, onCommit
// never -- on every composition.

TEST_P(ConformanceTest, DeadlineUnwindReleasesEverything)
{
    TmRuntime rt(GetParam());
    ThreadCtx &ctx = rt.registerThread();
    g_word = 5;

    unsigned abort_fires = 0;
    unsigned commit_fires = 0;
    TxnOptions opts;
    opts.maxAttempts = 1;
    TxnOutcome outcome = rt.runWith(ctx, opts, [&](Txn &tx) {
        tx.onAbort([&] { ++abort_fires; });
        tx.onCommit([&] { ++commit_fires; });
        tx.store(&g_word, 99);
        tx.retry();
    });
    EXPECT_EQ(outcome, TxnOutcome::kDeadlineExceeded) << algo();
    EXPECT_EQ(rt.peek(&g_word), 5u)
        << algo() << ": unwound write leaked";
    EXPECT_EQ(abort_fires, 1u)
        << algo() << ": onAbort must fire exactly once";
    EXPECT_EQ(commit_fires, 0u)
        << algo() << ": onCommit must never fire for an unwound txn";
    EXPECT_EQ(rt.stats().get(Counter::kDeadlineExceeded), 1u) << algo();
    EXPECT_EQ(rt.stats().get(Counter::kOperations), 0u) << algo();

    // The unwind must leave the session reusable: a leaked lock or
    // fallback registration would wedge (or tax) this follow-up.
    rt.run(ctx, [&](Txn &tx) { tx.store(&g_word, tx.load(&g_word) + 1); });
    EXPECT_EQ(rt.peek(&g_word), 6u) << algo();
    expectQuiescent(rt, algo());
}

TEST_P(ConformanceTest, WallClockDeadlineBreaksRetryLivelock)
{
    // A body that retries forever would livelock an unbounded run();
    // the wall-clock deadline must bound it on every composition,
    // including after it has escalated through its fallback tiers.
    TmRuntime rt(GetParam());
    ThreadCtx &ctx = rt.registerThread();
    g_word = 0;

    TxnOptions opts;
    opts.deadline = std::chrono::milliseconds(25);
    TxnOutcome outcome = rt.runWith(ctx, opts, [&](Txn &tx) {
        tx.store(&g_word, 1);
        tx.retry();
    });
    EXPECT_EQ(outcome, TxnOutcome::kDeadlineExceeded) << algo();
    EXPECT_EQ(rt.peek(&g_word), 0u) << algo();
    rt.run(ctx, [&](Txn &tx) { tx.store(&g_word, 7); });
    EXPECT_EQ(rt.peek(&g_word), 7u) << algo();
    expectQuiescent(rt, algo());
}

TEST_P(ConformanceTest, MidGrantBarrierDeadlineHandsTicketOn)
{
    // Scripted aborts in the pre-grant window: the four grant-barrier
    // compositions restart the upgrade on every attempt, so the
    // attempt budget expires with the serial ticket held mid-barrier
    // -- the unwind must hand it on (no wedged FIFO, no leaked
    // registration). The barrier-free compositions never hit the site
    // and simply commit.
    RuntimeConfig cfg;
    FaultRule barrier;
    barrier.site = FaultSite::kIrrevocableUpgrade;
    barrier.kind = FaultKind::kAbortConflict;
    barrier.firstHit = 1;
    barrier.period = 1;
    // Exactly the budgeted transaction's four attempts; the follow-up
    // acquirer below must then pass the barrier cleanly.
    barrier.maxFires = 4;
    cfg.fault.add(barrier);
    TmRuntime rt(GetParam(), cfg);
    ThreadCtx &ctx = rt.registerThread();
    g_word = 0;

    TxnOptions opts;
    opts.maxAttempts = 4;
    TxnOutcome outcome = rt.runWith(ctx, opts, [&](Txn &tx) {
        tx.becomeIrrevocable();
        tx.store(&g_word, tx.load(&g_word) + 1);
    });
    bool usesBarrier = GetParam() == AlgoKind::kHybridNOrec ||
                       GetParam() == AlgoKind::kHybridNOrecLazy ||
                       GetParam() == AlgoKind::kRhNOrec ||
                       GetParam() == AlgoKind::kRhTl2;
    if (usesBarrier) {
        EXPECT_EQ(outcome, TxnOutcome::kDeadlineExceeded) << algo();
        EXPECT_EQ(rt.peek(&g_word), 0u) << algo();
        EXPECT_EQ(rt.stats().get(Counter::kIrrevocableUpgrades), 0u)
            << algo() << ": the grant must never have been issued";
    } else {
        EXPECT_EQ(outcome, TxnOutcome::kCommitted) << algo();
        EXPECT_EQ(rt.peek(&g_word), 1u) << algo();
    }
    // Either way the serial FIFO must still serve new acquirers.
    rt.run(ctx, [&](Txn &tx) {
        tx.becomeIrrevocable();
        tx.store(&g_word, 42);
    });
    EXPECT_EQ(rt.peek(&g_word), 42u) << algo();
    expectQuiescent(rt, algo());
}

TEST_P(ConformanceTest, PostHtmEscalationDeadlineUnwinds)
{
    // Every hardware begin is scripted dead, so the HTM-backed
    // compositions exhaust their fast path and the budget expires on
    // the software fallback -- where the fallback registration and any
    // undo journal are live and must be released by the unwind.
    RuntimeConfig cfg;
    FaultRule hw;
    hw.site = FaultSite::kHtmBegin;
    hw.kind = FaultKind::kAbortOther;
    hw.firstHit = 1;
    hw.period = 1;
    cfg.fault.add(hw);
    TmRuntime rt(GetParam(), cfg);
    ThreadCtx &ctx = rt.registerThread();
    g_word = 3;

    TxnOptions opts;
    opts.maxAttempts = 3;
    TxnOutcome outcome = rt.runWith(ctx, opts, [&](Txn &tx) {
        tx.store(&g_word, tx.load(&g_word) + 10);
        tx.retry();
    });
    EXPECT_EQ(outcome, TxnOutcome::kDeadlineExceeded) << algo();
    if (GetParam() != AlgoKind::kLockElision) {
        EXPECT_EQ(rt.peek(&g_word), 3u)
            << algo() << ": slow-path write leaked";
    }
    // Lock Elision's serial mode writes in place and -- like a real
    // elided lock -- documents that an aborted critical section leaves
    // its partial updates visible; only the lock release is owed.
    EXPECT_EQ(rt.stats().get(Counter::kDeadlineExceeded), 1u) << algo();
    uint64_t before = rt.peek(&g_word);
    rt.run(ctx, [&](Txn &tx) { tx.store(&g_word, tx.load(&g_word) + 1); });
    EXPECT_EQ(rt.peek(&g_word), before + 1) << algo();
    expectQuiescent(rt, algo());
}

TEST_P(ConformanceTest, IrrevocableGrantSuppressesDeadline)
{
    // Once granted, the transaction must commit even though its
    // deadline expires mid-body: irrevocability outranks the deadline
    // (the grant may have already performed unrepeatable effects).
    TmRuntime rt(GetParam());
    ThreadCtx &ctx = rt.registerThread();
    g_word = 0;

    TxnOptions opts;
    opts.deadline = std::chrono::milliseconds(50);
    TxnOutcome outcome = rt.runWith(ctx, opts, [&](Txn &tx) {
        tx.becomeIrrevocable();
        std::this_thread::sleep_for(std::chrono::milliseconds(80));
        tx.store(&g_word, 11);
    });
    EXPECT_EQ(outcome, TxnOutcome::kCommitted)
        << algo() << ": a granted transaction must commit";
    EXPECT_EQ(rt.peek(&g_word), 11u) << algo();
    EXPECT_EQ(rt.stats().get(Counter::kDeadlineExceeded), 0u) << algo();
    expectQuiescent(rt, algo());
}

TEST_P(ConformanceTest, CommitPathFlagMatrix)
{
    // The commit-path speed campaign (docs/COMMIT_PATH.md) is four
    // independently-switchable fronts; semantics must be identical at
    // every point of the 2^4 flag lattice, on every composition --
    // algorithms a flag does not apply to must simply ignore it. A
    // 17th leg saturates the Bloom summaries (the universal-collision
    // pathology) so the filter's conservative fallback is on-path too.
    for (unsigned bits = 0; bits <= 16; ++bits) {
        TmConfig cp;
        cp.readFilter = (bits & 1) != 0;
        cp.redoIndex = (bits & 2) != 0;
        cp.tsExtension = (bits & 4) != 0;
        cp.groupCommit = (bits & 8) != 0;
        if (bits == 16) {
            cp.readFilter = true;
            cp.filterSaturateForTest = true;
        }
        SCOPED_TRACE(std::string(algo()) + " flags=" +
                     (cp.readFilter ? "F" : "-") +
                     (cp.redoIndex ? "I" : "-") +
                     (cp.tsExtension ? "X" : "-") +
                     (cp.groupCommit ? "G" : "-") +
                     (cp.filterSaturateForTest ? "S" : "-"));
        runTransferScenario(GetParam(), nullptr, 4, 80, false, &cp);
    }
}

TEST_P(ConformanceTest, OpacityHoldsUnderIrrevocableStorm)
{
    // Pre-grant delays and aborts plus stretched post-grant clock
    // holds, while every eighth operation upgrades.
    runTransferScenario(GetParam(), "irrevocable-storm", 4, 60, true);
}

TEST_P(ConformanceTest, OpacityHoldsUnderStallSerialChaos)
{
    // Fallback starts mostly aborted and serial grants followed by
    // scripted stalls: herds every composition through its serial /
    // watchdog path while the invariants must keep holding.
    runTransferScenario(GetParam(), "stall-serial", 4, 60, false);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, ConformanceTest,
    ::testing::Values(AlgoKind::kLockElision, AlgoKind::kNOrec,
                      AlgoKind::kNOrecLazy, AlgoKind::kTl2,
                      AlgoKind::kHybridNOrec, AlgoKind::kHybridNOrecLazy,
                      AlgoKind::kRhNOrec, AlgoKind::kRhTl2),
    [](const ::testing::TestParamInfo<AlgoKind> &info) {
        std::string name = algoKindName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace rhtm
