/**
 * @file
 * Property tests for the commit-path Bloom summaries (front 1,
 * docs/COMMIT_PATH.md): TxFilter must never produce a false negative
 * (that would be a lost conflict -- a safety bug), must keep its
 * false-positive rate within the design bound (a perf property: FPs
 * only cost spurious revalidations), and the CommitFilterRing must
 * answer "covered and disjoint" only when every version in the window
 * has a live slot whose published bits are disjoint from the reader's.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/core/engine/filter.h"
#include "src/util/rng.h"

namespace rhtm
{
namespace
{

/** Distinct fake addresses, well spread (heap-like 8-byte spacing). */
std::vector<uint64_t *>
makeAddrs(size_t n, Rng &rng)
{
    std::set<uint64_t> seen;
    std::vector<uint64_t *> out;
    while (out.size() < n) {
        uint64_t raw = (rng.next() << 3) | 0x10000;
        if (seen.insert(raw).second)
            out.push_back(reinterpret_cast<uint64_t *>(raw));
    }
    return out;
}

TEST(TxFilterTest, NeverForgetsAnAddedAddress)
{
    Rng rng(42);
    for (int round = 0; round < 100; ++round) {
        TxFilter f;
        auto addrs = makeAddrs(1 + rng.nextBounded(64), rng);
        for (uint64_t *a : addrs) {
            f.add(a);
            // No false negatives EVER, including mid-stream.
            ASSERT_TRUE(f.mightContain(a));
        }
        for (uint64_t *a : addrs)
            ASSERT_TRUE(f.mightContain(a));
    }
}

TEST(TxFilterTest, FalsePositiveRateBounded)
{
    Rng rng(7);
    // A typical transaction write set (16 words) against 10k foreign
    // probes: with 256 bits and 2 probes per key the analytic FP rate
    // is ~1.5%; assert an order-of-magnitude safety margin.
    unsigned fps = 0;
    constexpr unsigned kProbes = 10000;
    TxFilter f;
    auto member = makeAddrs(16, rng);
    for (uint64_t *a : member)
        f.add(a);
    auto foreign = makeAddrs(kProbes, rng);
    for (uint64_t *a : foreign) {
        if (f.mightContain(a))
            ++fps;
    }
    EXPECT_LT(fps, kProbes / 10) << "false-positive rate above 10%";
}

TEST(TxFilterTest, IntersectionHasNoFalseNegatives)
{
    Rng rng(99);
    for (int round = 0; round < 200; ++round) {
        TxFilter a, b;
        auto addrs = makeAddrs(24, rng);
        for (size_t i = 0; i < 12; ++i)
            a.add(addrs[i]);
        for (size_t i = 11; i < 24; ++i) // addrs[11] shared.
            b.add(addrs[i]);
        ASSERT_TRUE(a.intersects(b))
            << "a shared address must always intersect";
        ASSERT_TRUE(b.intersects(a));
    }
}

TEST(TxFilterTest, DisjointSetsMostlyDontIntersect)
{
    // The ring-skip scenario that has to pay off: a small committer
    // write set (2 words) probed against a reader's 8-word read
    // summary. Analytically ~23% of disjoint pairs collide at these
    // sizes (256 bits, 2 probes/key); assert under 40%. A collision is
    // only a perf loss (spurious revalidate), never a safety issue.
    Rng rng(123);
    unsigned collisions = 0;
    constexpr int kRounds = 500;
    for (int round = 0; round < kRounds; ++round) {
        TxFilter reads, writes;
        auto addrs = makeAddrs(10, rng);
        for (size_t i = 0; i < 8; ++i)
            reads.add(addrs[i]);
        for (size_t i = 8; i < 10; ++i)
            writes.add(addrs[i]);
        if (reads.intersects(writes))
            ++collisions;
    }
    EXPECT_LT(collisions, kRounds * 4 / 10);
}

TEST(TxFilterTest, MergeUnionsAndClearEmpties)
{
    Rng rng(5);
    TxFilter a, b;
    auto addrs = makeAddrs(20, rng);
    for (size_t i = 0; i < 10; ++i)
        a.add(addrs[i]);
    for (size_t i = 10; i < 20; ++i)
        b.add(addrs[i]);
    a.merge(b.words());
    for (uint64_t *p : addrs)
        EXPECT_TRUE(a.mightContain(p));
    EXPECT_FALSE(a.empty());
    a.clear();
    EXPECT_TRUE(a.empty());
    for (uint64_t *p : addrs)
        EXPECT_FALSE(a.mightContain(p));
}

TEST(TxFilterTest, SaturateIsTheUniversalSet)
{
    Rng rng(6);
    TxFilter f;
    f.saturate();
    for (uint64_t *p : makeAddrs(100, rng))
        EXPECT_TRUE(f.mightContain(p));
    TxFilter other;
    other.add(makeAddrs(1, rng)[0]);
    EXPECT_TRUE(f.intersects(other));
}

//
// CommitFilterRing
//

struct RingFixture : public ::testing::Test
{
    CommitFilterRing ring;
    Rng rng{2026};
};

TEST_F(RingFixture, CoveredDisjointWalksPublishedWindow)
{
    auto addrs = makeAddrs(12, rng);
    TxFilter read;
    read.add(addrs[0]);
    read.add(addrs[1]);
    // Publish versions 2..8 (even), each with a disjoint write set.
    for (uint64_t v = 2; v <= 8; v += 2) {
        TxFilter w;
        w.add(addrs[2 + v / 2]);
        ring.publish(v, w);
    }
    EXPECT_TRUE(ring.coveredDisjoint(0, 8, read));
    EXPECT_TRUE(ring.coveredDisjoint(4, 8, read));
}

TEST_F(RingFixture, IntersectingCommitDefeatsTheSkip)
{
    auto addrs = makeAddrs(4, rng);
    TxFilter read;
    read.add(addrs[0]);
    TxFilter disjoint, overlapping;
    disjoint.add(addrs[1]);
    overlapping.add(addrs[0]); // Same address the reader logged.
    ring.publish(2, disjoint);
    ring.publish(4, overlapping);
    ring.publish(6, disjoint);
    EXPECT_TRUE(ring.coveredDisjoint(0, 2, read));
    EXPECT_FALSE(ring.coveredDisjoint(0, 4, read))
        << "an intersecting commit inside the window must fail the skip";
    EXPECT_FALSE(ring.coveredDisjoint(2, 6, read));
    EXPECT_TRUE(ring.coveredDisjoint(4, 6, read));
}

TEST_F(RingFixture, UnpublishedVersionFailsConservatively)
{
    auto addrs = makeAddrs(2, rng);
    TxFilter read, w;
    read.add(addrs[0]);
    w.add(addrs[1]);
    ring.publish(2, w);
    // Version 4 never published (e.g. a hardware fast-path bump).
    EXPECT_FALSE(ring.coveredDisjoint(0, 4, read));
    // Degenerate/overflow windows fail too.
    EXPECT_FALSE(ring.coveredDisjoint(4, 4, read));
    EXPECT_FALSE(ring.coveredDisjoint(8, 4, read));
    EXPECT_FALSE(ring.coveredDisjoint(
        0, CommitFilterRing::kSlots * 2 + 2, read));
}

TEST_F(RingFixture, WrapOverwriteInvalidatesOldWindow)
{
    auto addrs = makeAddrs(2, rng);
    TxFilter read, w;
    read.add(addrs[0]);
    w.add(addrs[1]);
    for (uint64_t v = 2; v <= CommitFilterRing::kSlots * 2 + 2; v += 2)
        ring.publish(v, w);
    // Version 2's slot now holds kSlots*2 + 2: the old window is gone.
    EXPECT_FALSE(ring.coveredDisjoint(0, 2, read));
    // The most recent window is still walkable.
    uint64_t to = CommitFilterRing::kSlots * 2 + 2;
    EXPECT_TRUE(ring.coveredDisjoint(to - 4, to, read));
}

TEST_F(RingFixture, ResetForTestClearsEverySlot)
{
    auto addrs = makeAddrs(2, rng);
    TxFilter read, w;
    read.add(addrs[0]);
    w.add(addrs[1]);
    ring.publish(2, w);
    ASSERT_TRUE(ring.coveredDisjoint(0, 2, read));
    ring.resetForTest();
    EXPECT_FALSE(ring.coveredDisjoint(0, 2, read));
}

} // namespace
} // namespace rhtm
