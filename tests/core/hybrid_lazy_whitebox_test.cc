/**
 * @file
 * White-box tests of the lazy Hybrid NOrec slow path: the HTM lock is
 * raised only across the commit write-back, reads value-validate, and
 * writes stay buffered until commit.
 */

#include <gtest/gtest.h>

#include "src/api/runtime.h"

namespace rhtm
{
namespace
{

void
forceFallback(ThreadCtx &ctx)
{
    ctx.session().begin(TxnHint::kNone);
    ctx.session().onHtmAbort(HtmAbort{HtmAbortCause::kCapacity, false, 0});
}

struct LazyHybridFixture : public ::testing::Test
{
    LazyHybridFixture() : rt(AlgoKind::kHybridNOrecLazy) {}

    TmRuntime rt;
    alignas(64) uint64_t x = 1;
    alignas(64) uint64_t y = 2;
    alignas(64) uint64_t z = 3;
};

TEST_F(LazyHybridFixture, WritesStayBufferedUntilCommit)
{
    ThreadCtx &cb = rt.registerThread();
    TxSession &b = cb.session();
    forceFallback(cb);
    b.begin(TxnHint::kNone);
    b.write(&x, 10);
    EXPECT_EQ(rt.peek(&x), 1u) << "lazy write leaked before commit";
    EXPECT_EQ(rt.peek(&rt.globals().htmLock), 0u)
        << "the lazy slow path must not hold the HTM lock mid-body";
    EXPECT_FALSE(clockIsLocked(rt.peek(&rt.globals().clock)))
        << "the lazy slow path must not hold the clock mid-body";
    EXPECT_EQ(b.read(&x), 10u) << "read-own-write through the buffer";
    b.commit();
    b.onComplete();
    EXPECT_EQ(rt.peek(&x), 10u);
    EXPECT_EQ(rt.peek(&rt.globals().htmLock), 0u);
}

TEST_F(LazyHybridFixture, FastPathSurvivesSlowWriterBody)
{
    // Unlike the eager slow path, the lazy one lets a hardware fast
    // path commit while a slow-path writer is mid-body (before its
    // commit window).
    ThreadCtx &ca = rt.registerThread();
    ThreadCtx &cb = rt.registerThread();
    TxSession &a = ca.session();
    TxSession &b = cb.session();

    forceFallback(cb);
    b.begin(TxnHint::kNone);
    b.write(&z, 30); // Buffered; no locks held.

    a.begin(TxnHint::kNone);
    EXPECT_EQ(a.read(&x), 1u);
    a.write(&y, 20);
    a.commit(); // Must succeed: no HTM lock, no clock lock.
    a.onComplete();
    EXPECT_EQ(rt.peek(&y), 20u);

    b.commit(); // b revalidates (reads untouched) and writes back.
    b.onComplete();
    EXPECT_EQ(rt.peek(&z), 30u);
}

TEST_F(LazyHybridFixture, SlowPathValueValidationSurvivesSilentClockBump)
{
    ThreadCtx &cb = rt.registerThread();
    TxSession &b = cb.session();

    forceFallback(cb);
    b.begin(TxnHint::kNone);
    EXPECT_EQ(b.read(&x), 1u);
    // Another commit bumps the clock but touches nothing b read.
    rt.poke(&z, 30);
    uint64_t clock = rt.peek(&rt.globals().clock);
    rt.poke(&rt.globals().clock, clock + 2);
    // Value validation extends the snapshot instead of restarting.
    EXPECT_EQ(b.read(&y), 2u);
    b.commit();
    b.onComplete();
}

TEST_F(LazyHybridFixture, SlowPathRestartsOnOverwrite)
{
    ThreadCtx &cb = rt.registerThread();
    TxSession &b = cb.session();

    forceFallback(cb);
    b.begin(TxnHint::kNone);
    EXPECT_EQ(b.read(&x), 1u);
    rt.poke(&x, 100);
    uint64_t clock = rt.peek(&rt.globals().clock);
    rt.poke(&rt.globals().clock, clock + 2);
    EXPECT_THROW(b.read(&y), TxRestart);
    b.onRestart();
}

TEST_F(LazyHybridFixture, CommitRevalidatesBeforeWriteBack)
{
    ThreadCtx &cb = rt.registerThread();
    TxSession &b = cb.session();

    forceFallback(cb);
    b.begin(TxnHint::kNone);
    EXPECT_EQ(b.read(&x), 1u);
    b.write(&y, 20);
    // Overwrite x behind b's back: its commit must restart, not
    // publish y.
    rt.poke(&x, 100);
    uint64_t clock = rt.peek(&rt.globals().clock);
    rt.poke(&rt.globals().clock, clock + 2);
    EXPECT_THROW(b.commit(), TxRestart);
    b.onRestart();
    EXPECT_EQ(rt.peek(&y), 2u) << "failed commit must not publish";
    EXPECT_FALSE(clockIsLocked(rt.peek(&rt.globals().clock)));
    EXPECT_EQ(rt.peek(&rt.globals().htmLock), 0u);
}

TEST_F(LazyHybridFixture, FastPathKilledOnlyDuringWriteBack)
{
    // A fast path that reads nothing the slow path writes still dies
    // if the write-back window overlaps it (HTM-lock subscription) --
    // drive the windows by hand.
    ThreadCtx &ca = rt.registerThread();
    ThreadCtx &cb = rt.registerThread();
    TxSession &a = ca.session();
    TxSession &b = cb.session();

    forceFallback(cb);
    b.begin(TxnHint::kNone);
    b.write(&z, 30);

    a.begin(TxnHint::kNone); // Subscribes to the HTM lock.
    EXPECT_EQ(a.read(&x), 1u);

    b.commit(); // Raises the HTM lock during write-back.
    b.onComplete();

    // a's subscription saw the lock bounce: doomed.
    EXPECT_THROW(a.read(&y), HtmAbort);
}

} // namespace
} // namespace rhtm
