/**
 * @file
 * White-box tests of the hybrid algorithms, driving sessions directly
 * to verify the exact coordination the paper describes: Hybrid NOrec's
 * early HTM-lock subscription vs RH NOrec's commit-time clock access,
 * the HTM prefix/postfix mechanics, the fallback counter, and the
 * serial starvation lock.
 */

#include <gtest/gtest.h>

#include "src/core/rh_norec.h"

#include "src/api/runtime.h"

namespace rhtm
{
namespace
{

/**
 * Force @p ctx's next attempts onto the slow path: simulate a
 * capacity-style abort of the (not yet started) fast path.
 */
void
forceFallback(ThreadCtx &ctx)
{
    ctx.session().begin(TxnHint::kNone);
    // A capacity abort never retries in hardware (Section 3.3).
    try {
        throw HtmAbort{HtmAbortCause::kCapacity, false, 0};
    } catch (const HtmAbort &a) {
        // The HtmTxn is still active from begin(); cancel it the way
        // the real abort path would have.
        ctx.session().onHtmAbort(a);
    }
}

struct HybridFixture : public ::testing::Test
{
    alignas(64) uint64_t x = 1;
    alignas(64) uint64_t y = 2;
    alignas(64) uint64_t z = 3;
};

TEST_F(HybridFixture, HyNOrecSlowWriterKillsFastPath)
{
    TmRuntime rt(AlgoKind::kHybridNOrec);
    ThreadCtx &ca = rt.registerThread();
    ThreadCtx &cb = rt.registerThread();
    TxSession &a = ca.session();
    TxSession &b = cb.session();

    // a: hardware fast path reading x (and subscribed to htmLock).
    a.begin(TxnHint::kNone);
    EXPECT_EQ(a.read(&x), 1u);

    // b: software slow path writing the *unrelated* z.
    forceFallback(cb);
    b.begin(TxnHint::kNone);
    b.write(&z, 30);
    EXPECT_EQ(rt.peek(&rt.globals().htmLock), 1u)
        << "eager HY-NOrec raises the HTM lock at first write";
    b.commit();
    b.onComplete();

    // The false abort the paper attacks: a read nothing b wrote, yet
    // the htmLock subscription dooms it.
    EXPECT_THROW(a.read(&y), HtmAbort);
}

TEST_F(HybridFixture, RhNOrecFastPathSurvivesSlowWriter)
{
    TmRuntime rt(AlgoKind::kRhNOrec);
    ThreadCtx &ca = rt.registerThread();
    ThreadCtx &cb = rt.registerThread();
    TxSession &a = ca.session();
    TxSession &b = cb.session();

    a.begin(TxnHint::kNone);
    EXPECT_EQ(a.read(&x), 1u);

    // b: mixed slow path writing the unrelated z; its writes travel in
    // the HTM postfix, so the HTM lock is never raised.
    forceFallback(cb);
    b.begin(TxnHint::kNone);
    EXPECT_EQ(b.read(&z), 3u);
    b.write(&z, 30);
    EXPECT_EQ(rt.peek(&rt.globals().htmLock), 0u)
        << "RH NOrec must not raise the HTM lock on the postfix path";
    b.commit();
    b.onComplete();
    EXPECT_EQ(rt.peek(&z), 30u);

    // The headline property: the fast path read no location b wrote
    // and holds no early clock subscription, so it survives and
    // commits.
    EXPECT_EQ(a.read(&y), 2u);
    a.write(&y, 20);
    a.commit();
    a.onComplete();
    EXPECT_EQ(rt.peek(&y), 20u);

    StatsSummary s = rt.stats();
    EXPECT_EQ(s.get(Counter::kHtmConflictAborts), 0u);
    EXPECT_GE(s.get(Counter::kPostfixSuccesses), 1u);
}

TEST_F(HybridFixture, RhNOrecFastPathAbortsOnRealConflict)
{
    TmRuntime rt(AlgoKind::kRhNOrec);
    ThreadCtx &ca = rt.registerThread();
    ThreadCtx &cb = rt.registerThread();
    TxSession &a = ca.session();
    TxSession &b = cb.session();

    a.begin(TxnHint::kNone);
    EXPECT_EQ(a.read(&x), 1u);

    // b commits a mixed slow-path write to x itself.
    forceFallback(cb);
    b.begin(TxnHint::kNone);
    b.write(&x, 100);
    b.commit();
    b.onComplete();

    // True conflict: a tracked x.
    EXPECT_THROW(a.read(&y), HtmAbort);
}

TEST_F(HybridFixture, RhPrefixCommitRegistersFallbackAtomically)
{
    TmRuntime rt(AlgoKind::kRhNOrec);
    ThreadCtx &cb = rt.registerThread();
    TxSession &b = cb.session();

    forceFallback(cb);
    b.begin(TxnHint::kNone); // Starts the HTM prefix.
    EXPECT_EQ(rt.peek(&rt.globals().fallbacks), 0u)
        << "registration is deferred to the prefix commit";
    EXPECT_EQ(b.read(&x), 1u); // Still inside the prefix.
    b.write(&y, 20); // First write: prefix commits, postfix starts.
    EXPECT_EQ(rt.peek(&rt.globals().fallbacks), 1u)
        << "prefix commit must publish num_of_fallbacks++";
    EXPECT_TRUE(clockIsLocked(rt.peek(&rt.globals().clock)))
        << "first write locks the clock";
    b.commit();
    b.onComplete();
    EXPECT_EQ(rt.peek(&rt.globals().fallbacks), 0u);
    EXPECT_FALSE(clockIsLocked(rt.peek(&rt.globals().clock)));

    StatsSummary s = rt.stats();
    EXPECT_EQ(s.get(Counter::kPrefixAttempts), 1u);
    EXPECT_EQ(s.get(Counter::kPrefixSuccesses), 1u);
    EXPECT_EQ(s.get(Counter::kPostfixAttempts), 1u);
    EXPECT_EQ(s.get(Counter::kPostfixSuccesses), 1u);
}

TEST_F(HybridFixture, RhReadOnlyMixedPathCanLiveEntirelyInPrefix)
{
    TmRuntime rt(AlgoKind::kRhNOrec);
    ThreadCtx &cb = rt.registerThread();
    TxSession &b = cb.session();

    forceFallback(cb);
    b.begin(TxnHint::kNone);
    EXPECT_EQ(b.read(&x), 1u);
    EXPECT_EQ(b.read(&y), 2u);
    b.commit(); // Algorithm 3 lines 59-62: commit the prefix directly.
    b.onComplete();

    StatsSummary s = rt.stats();
    EXPECT_EQ(s.get(Counter::kPrefixSuccesses), 1u);
    EXPECT_EQ(rt.peek(&rt.globals().fallbacks), 0u)
        << "a pure-prefix transaction never registers";
}

TEST_F(HybridFixture, RhFastPathSkipsClockWhenNoFallbacks)
{
    TmRuntime rt(AlgoKind::kRhNOrec);
    ThreadCtx &ca = rt.registerThread();
    TxSession &a = ca.session();

    uint64_t clock_before = rt.peek(&rt.globals().clock);
    a.begin(TxnHint::kNone);
    a.write(&x, 10);
    a.commit();
    a.onComplete();
    EXPECT_EQ(rt.peek(&rt.globals().clock), clock_before)
        << "no fallbacks -> no clock update (Algorithm 1 line 29)";
}

TEST_F(HybridFixture, RhFastWriterAbortsWhileClockLocked)
{
    TmRuntime rt(AlgoKind::kRhNOrec);
    ThreadCtx &ca = rt.registerThread();
    ThreadCtx &cb = rt.registerThread();
    TxSession &a = ca.session();
    TxSession &b = cb.session();

    forceFallback(cb);
    b.begin(TxnHint::kNone); // Prefix active.
    b.read(&z);
    b.write(&z, 30); // Prefix committed; postfix active; clock locked.

    // A fast-path writer cannot commit while the clock is locked
    // (Algorithm 1 lines 30-31).
    a.begin(TxnHint::kNone);
    a.write(&x, 10);
    EXPECT_THROW(a.commit(), HtmAbort);

    b.commit();
    b.onComplete();
    EXPECT_EQ(rt.peek(&rt.globals().fallbacks), 0u);
}

TEST_F(HybridFixture, RhFastPathBumpsClockWhenFallbacksExist)
{
    RuntimeConfig cfg;
    cfg.rh.enablePrefix = false; // b registers right at begin().
    TmRuntime rt(AlgoKind::kRhNOrec, cfg);
    ThreadCtx &ca = rt.registerThread();
    ThreadCtx &cb = rt.registerThread();
    TxSession &a = ca.session();
    TxSession &b = cb.session();

    forceFallback(cb);
    b.begin(TxnHint::kNone); // Software mixed phase, registered.
    EXPECT_EQ(b.read(&z), 3u);
    EXPECT_EQ(rt.peek(&rt.globals().fallbacks), 1u);

    uint64_t clock_before = rt.peek(&rt.globals().clock);
    a.begin(TxnHint::kNone);
    a.write(&x, 10);
    a.commit(); // Writer with fallbacks present: must bump the clock.
    a.onComplete();
    EXPECT_EQ(rt.peek(&rt.globals().clock), clock_before + 2)
        << "Algorithm 1 line 33: notify the slow paths";

    // And b, as an eager slow path, must now restart.
    EXPECT_THROW(b.read(&z), TxRestart);
    b.onRestart();
}

TEST_F(HybridFixture, RhSlowPathSerializesAfterRestartLimit)
{
    RuntimeConfig cfg;
    cfg.retry.maxSlowPathRestarts = 3;
    cfg.rh.enablePrefix = false; // Keep the software phase deterministic.
    TmRuntime rt(AlgoKind::kRhNOrec, cfg);
    ThreadCtx &cb = rt.registerThread();
    TxSession &b = cb.session();

    forceFallback(cb);
    for (unsigned i = 0; i < cfg.retry.maxSlowPathRestarts; ++i) {
        b.begin(TxnHint::kNone);
        b.read(&x);
        // Another commit moves the clock; b's next read must restart.
        rt.poke(&y, i);
        uint64_t clock = rt.peek(&rt.globals().clock);
        rt.poke(&rt.globals().clock, clock + 2);
        EXPECT_THROW(b.read(&x), TxRestart);
        b.onRestart();
    }
    // The next attempt runs under the serial lock.
    b.begin(TxnHint::kNone);
    EXPECT_EQ(rt.peek(&rt.globals().serialLock), 1u);
    b.read(&x);
    b.write(&x, 50);
    b.commit();
    b.onComplete();
    EXPECT_EQ(rt.peek(&rt.globals().serialLock), 0u);
    EXPECT_EQ(rt.stats().get(Counter::kCommitsSerialPath), 1u);
}

TEST_F(HybridFixture, RhFastWriterAbortsWhileSerialLockHeld)
{
    TmRuntime rt(AlgoKind::kRhNOrec);
    ThreadCtx &ca = rt.registerThread();
    ThreadCtx &cb = rt.registerThread();
    TxSession &a = ca.session();

    // Simulate a serialized slow path by taking the locks directly.
    rt.poke(&rt.globals().serialLock, 1);
    uint64_t f = rt.peek(&rt.globals().fallbacks);
    rt.poke(&rt.globals().fallbacks, f + 1);

    a.begin(TxnHint::kNone);
    a.write(&x, 10);
    EXPECT_THROW(a.commit(), HtmAbort) << "Section 3.3: writers abort";
    a.begin(TxnHint::kNone);
    EXPECT_EQ(a.read(&x), 1u);
    a.commit(); // Read-only fast paths still commit.
    a.onComplete();

    rt.poke(&rt.globals().serialLock, 0);
    rt.poke(&rt.globals().fallbacks, f);
    (void)cb;
}

TEST_F(HybridFixture, RhPostfixFailureFallsBackToHtmLock)
{
    TmRuntime rt(AlgoKind::kRhNOrec);
    ThreadCtx &cb = rt.registerThread();
    TxSession &b = cb.session();

    forceFallback(cb);
    b.begin(TxnHint::kNone);
    EXPECT_EQ(b.read(&x), 1u); // Prefix read.
    b.write(&y, 20);           // Prefix commits; postfix starts.

    // Doom the postfix: bump a line it read (y via read-own-write is
    // buffered, so make it read z first).
    EXPECT_EQ(b.read(&z), 3u);
    rt.poke(&z, 3); // Same value, but the line version changes.
    EXPECT_THROW(b.commit(), HtmAbort);
    b.onHtmAbort(HtmAbort{HtmAbortCause::kConflict, true, 0});

    EXPECT_FALSE(clockIsLocked(rt.peek(&rt.globals().clock)))
        << "failed postfix must release the clock";
    EXPECT_EQ(rt.peek(&y), 2u) << "postfix writes must not leak";

    // Next attempt: postfix budget spent -> software writes under the
    // HTM lock (Algorithm 2 lines 28-30).
    b.begin(TxnHint::kNone);
    EXPECT_EQ(b.read(&x), 1u);
    b.write(&y, 20);
    EXPECT_EQ(rt.peek(&rt.globals().htmLock), 1u)
        << "software-writer fallback must raise the HTM lock";
    b.commit();
    b.onComplete();
    EXPECT_EQ(rt.peek(&rt.globals().htmLock), 0u);
    EXPECT_EQ(rt.peek(&y), 20u);

    StatsSummary s = rt.stats();
    EXPECT_EQ(s.get(Counter::kPostfixAttempts), 1u);
    EXPECT_EQ(s.get(Counter::kPostfixSuccesses), 0u);
}

TEST_F(HybridFixture, RhStaleUndoNeverReplaysCommittedState)
{
    // Regression test: a software-writer commit leaves entries in the
    // undo journal; a later transaction's small-HTM abort must not
    // replay them (that would silently un-commit the earlier
    // transaction -- observed as red-black tree corruption).
    TmRuntime rt(AlgoKind::kRhNOrec);
    ThreadCtx &cb = rt.registerThread();
    TxSession &b = cb.session();

    // Transaction 1: postfix fails, writes land in software with an
    // undo journal; commits x = 10.
    forceFallback(cb);
    b.begin(TxnHint::kNone);
    b.write(&x, 10);           // Prefix commits; postfix active.
    EXPECT_EQ(b.read(&z), 3u); // Postfix read of z.
    rt.poke(&z, 3);            // Doom the postfix (line version bump).
    EXPECT_THROW(b.commit(), HtmAbort);
    b.onHtmAbort(HtmAbort{HtmAbortCause::kConflict, true, 0});
    b.begin(TxnHint::kNone);   // Software attempt (budgets spent).
    b.write(&x, 10);           // Direct write; undo journal holds x=1.
    b.commit();
    b.onComplete();
    ASSERT_EQ(rt.peek(&x), 10u);

    // Transaction 2: its postfix aborts; the rollback must not touch x.
    forceFallback(cb);
    b.begin(TxnHint::kNone);
    b.write(&y, 20);
    EXPECT_EQ(b.read(&z), 3u);
    rt.poke(&z, 3);
    EXPECT_THROW(b.commit(), HtmAbort);
    b.onHtmAbort(HtmAbort{HtmAbortCause::kConflict, true, 0});

    EXPECT_EQ(rt.peek(&x), 10u)
        << "stale undo journal replayed over committed state";
}

TEST_F(HybridFixture, RhAdaptivePrefixShrinksOnAbort)
{
    RuntimeConfig cfg;
    cfg.rh.maxPrefixLength = 64;
    cfg.rh.minPrefixLength = 2;
    TmRuntime rt(AlgoKind::kRhNOrec, cfg);
    ThreadCtx &cb = rt.registerThread();
    auto *rh = dynamic_cast<RhNOrecSession *>(&cb.session());
    ASSERT_NE(rh, nullptr);
    EXPECT_EQ(rh->expectedPrefixLength(), 64u);

    forceFallback(cb);
    cb.session().begin(TxnHint::kNone); // Prefix active.
    cb.session().read(&x);
    // Doom the prefix.
    rt.poke(&x, 1);
    EXPECT_THROW(cb.session().read(&y), HtmAbort);
    cb.session().onHtmAbort(HtmAbort{HtmAbortCause::kConflict, true, 0});
    EXPECT_LT(rh->expectedPrefixLength(), 64u)
        << "abort feedback must shrink the expected prefix";
}

TEST_F(HybridFixture, RhPrefixLengthCapsSoftwarePhaseFollows)
{
    RuntimeConfig cfg;
    cfg.rh.maxPrefixLength = 4;
    cfg.rh.adaptivePrefix = false;
    TmRuntime rt(AlgoKind::kRhNOrec, cfg);
    ThreadCtx &cb = rt.registerThread();
    TxSession &b = cb.session();

    std::vector<uint64_t> arr(64, 7);
    forceFallback(cb);
    b.begin(TxnHint::kNone);
    for (size_t i = 0; i < 16; ++i)
        EXPECT_EQ(b.read(&arr[i * 4]), 7u);
    // After maxPrefixLength reads the prefix committed and we are in
    // the software phase -> registered as a fallback.
    EXPECT_EQ(rt.peek(&rt.globals().fallbacks), 1u);
    b.commit();
    b.onComplete();
    EXPECT_EQ(rt.peek(&rt.globals().fallbacks), 0u);
}

TEST_F(HybridFixture, DisabledPrefixAndPostfixBehaveLikeHybridNOrec)
{
    RuntimeConfig cfg;
    cfg.rh.enablePrefix = false;
    cfg.rh.enablePostfix = false;
    TmRuntime rt(AlgoKind::kRhNOrec, cfg);
    ThreadCtx &cb = rt.registerThread();
    TxSession &b = cb.session();

    forceFallback(cb);
    b.begin(TxnHint::kNone);
    EXPECT_EQ(b.read(&x), 1u);
    b.write(&y, 20);
    EXPECT_EQ(rt.peek(&rt.globals().htmLock), 1u)
        << "without the postfix, writes need the HTM lock";
    b.commit();
    b.onComplete();
    StatsSummary s = rt.stats();
    EXPECT_EQ(s.get(Counter::kPrefixAttempts), 0u);
    EXPECT_EQ(s.get(Counter::kPostfixAttempts), 0u);
}

TEST_F(HybridFixture, HyNOrecFastPathCommitAbortsOnLockedClock)
{
    TmRuntime rt(AlgoKind::kHybridNOrec);
    ThreadCtx &ca = rt.registerThread();
    TxSession &a = ca.session();

    uint64_t f = rt.peek(&rt.globals().fallbacks);
    rt.poke(&rt.globals().fallbacks, f + 1);
    uint64_t clock = rt.peek(&rt.globals().clock);
    rt.poke(&rt.globals().clock, clockWithLock(clock));

    a.begin(TxnHint::kNone);
    a.write(&x, 10);
    EXPECT_THROW(a.commit(), HtmAbort);

    rt.poke(&rt.globals().clock, clock);
    rt.poke(&rt.globals().fallbacks, f);
}

} // namespace
} // namespace rhtm
