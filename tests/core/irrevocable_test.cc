/**
 * @file
 * Irrevocability white-box tests: the grant barrier (a transaction
 * may be unwound only BEFORE becomeIrrevocable() returns, never
 * after), survival of scripted conflicts and capacity squeezes at the
 * upgrade window, FIFO serialization of concurrent upgraders on the
 * serial ticket lock, and zero side-effect replay under the full
 * irrevocable-storm chaos schedule (docs/LIFECYCLE.md).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/api/runtime.h"
#include "src/core/fault_points.h"
#include "src/fault/schedules.h"
#include "tests/test_support.h"

namespace rhtm
{
namespace
{

alignas(64) uint64_t g_word;
alignas(64) uint64_t g_array[16];

/** Every coordination word must be free and every ticket served. */
void
expectQuiescent(TmRuntime &rt, const char *algo)
{
    TmGlobals &g = rt.globals();
    EXPECT_FALSE(clockIsLocked(rt.peek(&g.clock)))
        << algo << ": clock lock leaked";
    EXPECT_EQ(rt.peek(&g.htmLock), 0u) << algo << ": HTM lock leaked";
    EXPECT_EQ(rt.peek(&g.fallbacks), 0u)
        << algo << ": fallback registration leaked";
    EXPECT_EQ(rt.peek(&g.serialLock), 0u)
        << algo << ": serial lock leaked";
    EXPECT_EQ(rt.peek(&g.globalLock), 0u)
        << algo << ": global lock leaked";
    EXPECT_EQ(rt.peek(&g.serialNextTicket), rt.peek(&g.serialServing))
        << algo << ": serial ticket imbalance";
    EXPECT_TRUE(g.watchdog.healthy())
        << algo << ": watchdog left unhealthy";
}

TEST(IrrevocableTest, UpgradeGrantsCommitsAndCountsOnEveryAlgorithm)
{
    for (AlgoKind kind : allAlgoKinds()) {
        const char *algo = algoKindName(kind);
        TmRuntime rt(kind);
        ThreadCtx &ctx = rt.registerThread();
        g_word = 0;

        unsigned effects = 0;
        rt.run(ctx, [&](Txn &tx) {
            tx.becomeIrrevocable();
            EXPECT_TRUE(tx.isIrrevocable()) << algo;
            ++effects; // Simulated external side effect.
            tx.store(&g_word, tx.load(&g_word) + 1);
        });
        EXPECT_EQ(effects, 1u)
            << algo << ": the side effect ran after the grant, so any "
            << "replay would be a grant-barrier violation";
        EXPECT_EQ(rt.peek(&g_word), 1u) << algo;
        EXPECT_GE(rt.stats().get(Counter::kIrrevocableUpgrades), 1u)
            << algo;
        expectQuiescent(rt, algo);

        // Irrevocability is per-transaction: the next one starts
        // revocable.
        rt.run(ctx, [&](Txn &tx) {
            EXPECT_FALSE(tx.isIrrevocable()) << algo;
            tx.store(&g_word, tx.load(&g_word) + 1);
        });
        EXPECT_EQ(rt.peek(&g_word), 2u) << algo;
    }
}

TEST(IrrevocableTest, PreGrantConflictsReplayWithoutSideEffects)
{
    // Script conflict aborts at the kIrrevocableUpgrade window: the
    // first two upgrade attempts are killed BEFORE the grant, the
    // third goes through. The side effect (bumped only after
    // becomeIrrevocable() returns) must run exactly once.
    for (AlgoKind kind :
         {AlgoKind::kHybridNOrec, AlgoKind::kHybridNOrecLazy,
          AlgoKind::kRhNOrec, AlgoKind::kRhTl2}) {
        const char *algo = algoKindName(kind);
        RuntimeConfig cfg;
        FaultRule rule;
        rule.site = FaultSite::kIrrevocableUpgrade;
        rule.kind = FaultKind::kAbortConflict;
        rule.firstHit = 1;
        rule.period = 1;
        rule.maxFires = 2;
        cfg.fault.add(rule);
        TmRuntime rt(kind, cfg);
        ThreadCtx &ctx = rt.registerThread();
        g_word = 0;

        unsigned effects = 0;
        rt.run(ctx, [&](Txn &tx) {
            tx.becomeIrrevocable();
            ++effects;
            tx.store(&g_word, tx.load(&g_word) + 1);
        });
        EXPECT_EQ(effects, 1u)
            << algo << ": pre-grant aborts must replay the body, not "
            << "the side effect";
        EXPECT_EQ(rt.peek(&g_word), 1u) << algo;
        ASSERT_NE(ctx.injector(), nullptr) << algo;
        EXPECT_EQ(ctx.injector()->fires(FaultSite::kIrrevocableUpgrade),
                  2u)
            << algo << ": both scripted aborts must actually fire";
        EXPECT_EQ(rt.stats().get(Counter::kIrrevocableUpgrades), 1u)
            << algo << ": aborted upgrade attempts must not count";
        expectQuiescent(rt, algo);
    }
}

TEST(IrrevocableTest, UpgradeSurvivesACapacitySqueeze)
{
    // A standing one-line capacity squeeze forces the read set out of
    // every hardware attempt (fast path and RH prefix), so the upgrade
    // request arrives on the software mixed path mid-read-phase -- the
    // validate-then-lock branch -- and must still be granted exactly
    // once.
    for (AlgoKind kind : {AlgoKind::kRhNOrec, AlgoKind::kHybridNOrec}) {
        const char *algo = algoKindName(kind);
        RuntimeConfig cfg;
        FaultRule squeeze;
        squeeze.site = FaultSite::kHtmBegin;
        squeeze.kind = FaultKind::kCapacitySqueeze;
        squeeze.firstHit = 1;
        squeeze.squeezeReadLines = 1;
        squeeze.squeezeWriteLines = 1;
        squeeze.squeezeTxns = 0; // Forever.
        cfg.fault.add(squeeze);
        TmRuntime rt(kind, cfg);
        ThreadCtx &ctx = rt.registerThread();
        for (uint64_t i = 0; i < 16; ++i)
            rt.poke(&g_array[i], i);

        unsigned effects = 0;
        uint64_t sum = 0;
        rt.run(ctx, [&](Txn &tx) {
            sum = 0;
            for (uint64_t i = 0; i < 16; ++i)
                sum += tx.load(&g_array[i]);
            tx.becomeIrrevocable();
            ++effects;
            tx.store(&g_array[0], sum);
        });
        EXPECT_EQ(effects, 1u) << algo;
        EXPECT_EQ(sum, 120u) << algo;
        EXPECT_EQ(rt.peek(&g_array[0]), 120u) << algo;
        EXPECT_EQ(rt.stats().get(Counter::kIrrevocableUpgrades), 1u)
            << algo;
        expectQuiescent(rt, algo);
    }
}

TEST(IrrevocableTest, PostGrantFaultSitesAbsorbScriptedAborts)
{
    // Every software write is scripted to abort. Before the grant that
    // would restart the attempt; after the grant the session must
    // absorb the fault (sessionFaultPointNoAbort) -- an unwind there
    // would replay the side effect.
    RuntimeConfig cfg;
    FaultRule rule;
    rule.site = FaultSite::kSoftwareWrite;
    rule.kind = FaultKind::kAbortConflict;
    rule.firstHit = 1;
    rule.period = 1;
    cfg.fault.add(rule);
    TmRuntime rt(AlgoKind::kRhNOrec, cfg);
    ThreadCtx &ctx = rt.registerThread();
    for (uint64_t i = 0; i < 3; ++i)
        rt.poke(&g_array[i], 0);

    unsigned effects = 0;
    rt.run(ctx, [&](Txn &tx) {
        tx.becomeIrrevocable();
        ++effects;
        for (uint64_t i = 0; i < 3; ++i)
            tx.store(&g_array[i], i + 1);
    });
    EXPECT_EQ(effects, 1u)
        << "a post-grant scripted abort must be absorbed, not unwound";
    for (uint64_t i = 0; i < 3; ++i)
        EXPECT_EQ(rt.peek(&g_array[i]), i + 1);
    ASSERT_NE(ctx.injector(), nullptr);
    EXPECT_GE(ctx.injector()->fires(FaultSite::kSoftwareWrite), 3u)
        << "the faults must actually fire inside the granted window";
    expectQuiescent(rt, "rh-norec");
}

TEST(IrrevocableTest, ConcurrentUpgradersSerializeInTicketOrder)
{
    // Several threads upgrade at once: the serial ticket lock must
    // grant them strictly FIFO. Each upgrader records the serving
    // ticket while it holds the grant (the serial lock makes the
    // vector effectively single-threaded), so the recorded sequence
    // must be strictly increasing.
    for (AlgoKind kind : {AlgoKind::kHybridNOrec, AlgoKind::kRhNOrec}) {
        const char *algo = algoKindName(kind);
        RuntimeConfig cfg;
        cfg.retry.stallBudgetTicks = 512;
        cfg.retry.stallYieldPhase = 32;
        cfg.retry.stallSleepMinUs = 1;
        cfg.retry.stallSleepMaxUs = 100;
        TmRuntime rt(kind, cfg);
        TmGlobals &g = rt.globals();
        g_word = 0;

        constexpr unsigned kThreads = 6;
        std::vector<uint64_t> grant_order; // Guarded by the serial lock.
        std::atomic<uint64_t> effects{0};
        test::runThreads(rt, kThreads, [&](unsigned, ThreadCtx &ctx) {
            rt.run(ctx, [&](Txn &tx) {
                tx.becomeIrrevocable();
                effects.fetch_add(1);
                grant_order.push_back(rt.peek(&g.serialServing));
                tx.store(&g_word, tx.load(&g_word) + 1);
            });
        });

        EXPECT_EQ(effects.load(), kThreads)
            << algo << ": one side effect per granted upgrade";
        EXPECT_EQ(rt.peek(&g_word), uint64_t(kThreads)) << algo;
        ASSERT_EQ(grant_order.size(), kThreads) << algo;
        for (unsigned i = 1; i < kThreads; ++i)
            EXPECT_LT(grant_order[i - 1], grant_order[i])
                << algo << ": upgraders must be served in ticket order";
        EXPECT_EQ(rt.stats().get(Counter::kIrrevocableUpgrades),
                  uint64_t(kThreads))
            << algo;
        expectQuiescent(rt, algo);
    }
}

TEST(IrrevocableTest, ZeroSideEffectReplayUnderIrrevocableStorm)
{
    // The acceptance scenario: the full irrevocable-storm schedule
    // (pre-grant delays and aborts, stretched post-grant clock holds,
    // sprinkled user exceptions) over several threads, a quarter of
    // whose operations upgrade. Every granted upgrade must run its
    // side effect exactly once and commit; the shared counter must
    // account exactly for the committed operations.
    for (AlgoKind kind :
         {AlgoKind::kRhNOrec, AlgoKind::kHybridNOrecLazy}) {
        const char *algo = algoKindName(kind);
        RuntimeConfig cfg;
        ASSERT_TRUE(makeChaosSchedule("irrevocable-storm", 7, cfg.fault));
        cfg.retry.stallBudgetTicks = 512;
        cfg.retry.stallYieldPhase = 32;
        cfg.retry.stallSleepMinUs = 1;
        cfg.retry.stallSleepMaxUs = 100;
        TmRuntime rt(kind, cfg);
        g_word = 0;

        constexpr unsigned kThreads = 6;
        constexpr unsigned kIters = 20;
        std::atomic<uint64_t> committed{0};
        std::atomic<uint64_t> upgraded{0};
        std::atomic<uint64_t> effects{0};
        std::atomic<uint64_t> exceptions{0};
        test::runThreads(rt, kThreads, [&](unsigned, ThreadCtx &ctx) {
            for (unsigned i = 0; i < kIters; ++i) {
                // Decided outside the transaction, as a real caller
                // with a non-replayable side effect would.
                bool upgrade = (i % 4 == 0);
                try {
                    rt.run(ctx, [&](Txn &tx) {
                        userExceptionFaultPoint(ctx.injector());
                        if (upgrade) {
                            tx.becomeIrrevocable();
                            effects.fetch_add(1);
                        }
                        tx.store(&g_word, tx.load(&g_word) + 1);
                    });
                    committed.fetch_add(1);
                    if (upgrade)
                        upgraded.fetch_add(1);
                } catch (const InjectedUserException &) {
                    exceptions.fetch_add(1);
                }
            }
        });

        EXPECT_EQ(committed.load() + exceptions.load(),
                  uint64_t(kThreads) * kIters)
            << algo;
        EXPECT_EQ(rt.peek(&g_word), committed.load()) << algo;
        EXPECT_GT(upgraded.load(), 0u)
            << algo << ": the storm must actually exercise upgrades";
        EXPECT_EQ(effects.load(), upgraded.load())
            << algo << ": side effects ran " << effects.load()
            << " times for " << upgraded.load()
            << " upgraded commits (replayed grant)";
        EXPECT_EQ(rt.stats().get(Counter::kIrrevocableUpgrades),
                  upgraded.load())
            << algo << ": every grant must commit exactly once";
        expectQuiescent(rt, algo);
    }
}

} // namespace
} // namespace rhtm
