/**
 * @file
 * Anti-lemming kill-switch tests: the breaker must trip after a streak
 * of non-retryable hardware aborts, drop fast-path attempts to ~0
 * while tripped, and re-probe the hardware once the cooldown decays --
 * so a transient fault never permanently herds the system onto the
 * fallback (the lemming effect).
 */

#include <gtest/gtest.h>

#include "src/api/runtime.h"
#include "tests/test_support.h"

namespace rhtm
{
namespace
{

/** One counter-increment transaction. */
void
bumpOp(TmRuntime &rt, ThreadCtx &ctx, uint64_t *word)
{
    rt.run(ctx, [&](Txn &tx) {
        tx.store(word, tx.load(word) + 1);
    });
}

/**
 * A config whose every fast-path begin dies with a capacity abort
 * (non-retryable) until the rule's fires are exhausted. Prefix and
 * postfix are disabled so the small HTMs don't consume the rule's
 * budget while the switch is tripped.
 */
RuntimeConfig
faultyHardwareConfig(uint64_t max_fires, unsigned threshold,
                     unsigned cooldown)
{
    RuntimeConfig cfg;
    cfg.retry.killSwitchThreshold = threshold;
    cfg.retry.killSwitchCooldownOps = cooldown;
    cfg.rh.enablePrefix = false;
    cfg.rh.enablePostfix = false;
    FaultRule r;
    r.site = FaultSite::kHtmBegin;
    r.kind = FaultKind::kAbortCapacity;
    r.period = 1;
    r.maxFires = max_fires;
    cfg.fault.add(r);
    return cfg;
}

TEST(KillSwitchTest, TripsBypassesAndRecoversAfterFaultClears)
{
    // 8 firings at threshold 4: the breaker trips twice, and once the
    // fault budget is exhausted the fast path must come back.
    TmRuntime rt(AlgoKind::kRhNOrec, faultyHardwareConfig(8, 4, 16));
    ThreadCtx &ctx = rt.registerThread();
    alignas(64) static uint64_t word;
    word = 0;

    constexpr unsigned kOps = 50;
    for (unsigned i = 0; i < kOps; ++i)
        bumpOp(rt, ctx, &word);
    EXPECT_EQ(rt.peek(&word), kOps);

    StatsSummary s = rt.stats();
    EXPECT_GE(s.get(Counter::kKillSwitchActivations), 1u);
    EXPECT_EQ(rt.globals().killSwitch.activations.load(),
              s.get(Counter::kKillSwitchActivations))
        << "global trip count mirrors the stats counter";

    // While tripped, begins are bypassed instead of attempted; every
    // operation does exactly one or the other.
    EXPECT_GE(s.get(Counter::kKillSwitchBypasses), 16u);
    EXPECT_EQ(s.get(Counter::kFastPathAttempts) +
                  s.get(Counter::kKillSwitchBypasses),
              kOps);

    // Every operation either committed in hardware or fell back once.
    EXPECT_EQ(s.get(Counter::kCommitsFastPath), kOps - s.get(Counter::kFallbacks));
    EXPECT_GE(s.get(Counter::kCommitsFastPath), 5u)
        << "hardware commits must resume after the fault clears";

    // Recovery: with the fault budget exhausted and the breaker open,
    // a fresh batch runs entirely on the fast path.
    EXPECT_EQ(rt.globals().killSwitch.cooldown.load(), 0u);
    rt.resetStats();
    for (unsigned i = 0; i < 10; ++i)
        bumpOp(rt, ctx, &word);
    s = rt.stats();
    EXPECT_EQ(s.get(Counter::kCommitsFastPath), 10u);
    EXPECT_EQ(s.get(Counter::kFallbacks), 0u);
    EXPECT_EQ(s.get(Counter::kKillSwitchBypasses), 0u);
}

TEST(KillSwitchTest, PreventsLemmingUnderPersistentFault)
{
    // A fault that never clears: without the breaker every operation
    // burns a doomed hardware attempt; with it, attempts collapse to
    // the handful of re-probes.
    constexpr unsigned kOps = 100;
    alignas(64) static uint64_t word;

    TmRuntime guarded(AlgoKind::kRhNOrec,
                      faultyHardwareConfig(~uint64_t(0), 4, 64));
    ThreadCtx &gctx = guarded.registerThread();
    word = 0;
    for (unsigned i = 0; i < kOps; ++i)
        bumpOp(guarded, gctx, &word);
    StatsSummary g = guarded.stats();

    RuntimeConfig unguardedCfg = faultyHardwareConfig(~uint64_t(0), 0, 64);
    TmRuntime unguarded(AlgoKind::kRhNOrec, unguardedCfg);
    ThreadCtx &uctx = unguarded.registerThread();
    word = 0;
    for (unsigned i = 0; i < kOps; ++i)
        bumpOp(unguarded, uctx, &word);
    StatsSummary u = unguarded.stats();

    EXPECT_EQ(u.get(Counter::kFastPathAttempts), kOps)
        << "with the switch disabled every op lemmings into hardware";
    EXPECT_LE(g.get(Counter::kFastPathAttempts), kOps / 10)
        << "with the switch tripped, attempts drop to ~0";
    EXPECT_GE(g.get(Counter::kKillSwitchBypasses), kOps * 8 / 10);
    EXPECT_EQ(g.get(Counter::kOperations), kOps)
        << "progress continues on the fallback while bypassing";
}

TEST(KillSwitchTest, HardwareCommitResetsTheStreak)
{
    // Alternate one doomed and several healthy begins: the streak
    // never reaches the threshold, so the switch must not trip.
    RuntimeConfig cfg;
    cfg.retry.killSwitchThreshold = 4;
    cfg.rh.enablePrefix = false;
    cfg.rh.enablePostfix = false;
    FaultRule r;
    r.site = FaultSite::kHtmBegin;
    r.kind = FaultKind::kAbortCapacity;
    r.firstHit = 2;
    r.period = 4; // Kill begins 2, 6, 10, ...
    cfg.fault.add(r);
    TmRuntime rt(AlgoKind::kRhNOrec, cfg);
    ThreadCtx &ctx = rt.registerThread();
    alignas(64) static uint64_t word;
    word = 0;
    for (unsigned i = 0; i < 40; ++i)
        bumpOp(rt, ctx, &word);
    StatsSummary s = rt.stats();
    EXPECT_EQ(s.get(Counter::kKillSwitchActivations), 0u);
    EXPECT_EQ(s.get(Counter::kKillSwitchBypasses), 0u);
    EXPECT_GT(s.get(Counter::kCommitsFastPath), 0u);
}

TEST(KillSwitchTest, StreakResetBelongsToTheReopeningDecayAlone)
{
    // Regression: a completer that lost the decay CAS used to reset
    // the failure streak anyway when its stale snapshot read 1, wiping
    // failures accumulated after another thread actually re-opened the
    // breaker and deferring the next trip.
    TmGlobals g;
    g.killSwitch.cooldown.store(2);
    g.killSwitch.consecutiveFailures.store(5);

    killSwitchOnComplete(g); // Decays 2 -> 1: still tripped.
    EXPECT_EQ(g.killSwitch.cooldown.load(), 1u);
    EXPECT_EQ(g.killSwitch.consecutiveFailures.load(), 5u)
        << "the streak survives until the breaker re-opens";

    killSwitchOnComplete(g); // Decays 1 -> 0: re-opens and resets.
    EXPECT_EQ(g.killSwitch.cooldown.load(), 0u);
    EXPECT_EQ(g.killSwitch.consecutiveFailures.load(), 0u)
        << "re-opening starts the next probe with a clean streak";

    killSwitchOnComplete(g); // Already open: a no-op.
    EXPECT_EQ(g.killSwitch.cooldown.load(), 0u);
}

TEST(KillSwitchTest, SharedAcrossThreads)
{
    // The breaker is global: one thread's failure streak shields every
    // thread from the doomed hardware path.
    TmRuntime rt(AlgoKind::kRhNOrec,
                 faultyHardwareConfig(~uint64_t(0), 8, 256));
    alignas(64) static uint64_t word;
    word = 0;
    constexpr unsigned kThreads = 4;
    constexpr unsigned kIters = 100;
    test::runThreads(rt, kThreads, [&](unsigned, ThreadCtx &ctx) {
        for (unsigned i = 0; i < kIters; ++i)
            bumpOp(rt, ctx, &word);
    });
    EXPECT_EQ(rt.peek(&word), kThreads * kIters);
    StatsSummary s = rt.stats();
    EXPECT_GE(s.get(Counter::kKillSwitchActivations), 1u);
    EXPECT_LE(s.get(Counter::kFastPathAttempts),
              kThreads * kIters / 4)
        << "most begins across all threads are bypassed";
}

} // namespace
} // namespace rhtm
