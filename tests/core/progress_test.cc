/**
 * @file
 * Progress-guarantee layer tests: FIFO ticket arbitration for the
 * serial starvation lock, the stall watchdog's detect/escalate/recover
 * cycle, the stable clock read, and end-to-end no-starvation under the
 * stall-serial chaos schedule.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/core/progress.h"

#include "src/api/runtime.h"
#include "src/fault/schedules.h"
#include "tests/test_support.h"

namespace rhtm
{
namespace
{

/** A policy whose watchdog reacts within a few microseconds. */
RetryPolicy
twitchyWatchdogPolicy()
{
    RetryPolicy policy;
    policy.stallBudgetTicks = 16;
    policy.stallYieldPhase = 4;
    policy.stallSleepMinUs = 1;
    policy.stallSleepMaxUs = 4;
    return policy;
}

TEST(SerialTicketLockTest, AcquireReleaseKeepsTheTicketsBalanced)
{
    HtmEngine eng;
    TmGlobals g;
    RetryPolicy policy;
    ThreadStats stats;
    for (int i = 0; i < 5; ++i) {
        serialLockAcquire(eng, g, policy, &stats);
        EXPECT_EQ(eng.directLoad(&g.serialLock), 1u);
        serialLockRelease(eng, g);
        EXPECT_EQ(eng.directLoad(&g.serialLock), 0u);
    }
    EXPECT_EQ(eng.directLoad(&g.serialNextTicket), 5u);
    EXPECT_EQ(eng.directLoad(&g.serialServing), 5u);
    EXPECT_EQ(stats.get(Counter::kSerialAcquires), 5u);
}

TEST(SerialTicketLockTest, GrantsStrictlyInTicketOrderUnderAStall)
{
    // Main takes ticket 0 and sits on the lock; eight workers queue
    // behind it. A bare CAS lock would grant the release race to an
    // arbitrary winner; the ticket lock must serve strictly in ticket
    // order, and the queued waiters must declare the holder stalled
    // while it sleeps.
    HtmEngine eng;
    TmGlobals g;
    RetryPolicy policy = twitchyWatchdogPolicy();
    serialLockAcquire(eng, g, policy, nullptr);

    constexpr unsigned kThreads = 8;
    std::vector<uint64_t> grant_order; // Guarded by the serial lock.
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&] {
            serialLockAcquire(eng, g, policy, nullptr);
            // We hold the lock: serialServing is our ticket and the
            // vector is effectively single-threaded here.
            grant_order.push_back(eng.directLoad(&g.serialServing));
            serialLockRelease(eng, g);
        });
    }

    // Wait until every worker holds a ticket, then stall long enough
    // for their tiny budgets to elapse before handing the lock over.
    spinUntil([&] {
        return eng.directLoad(&g.serialNextTicket) == kThreads + 1;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_GE(g.watchdog.stallEvents.load(), 1u)
        << "queued waiters must notice the sleeping holder";
    EXPECT_FALSE(g.watchdog.healthy());
    serialLockRelease(eng, g);
    for (auto &w : workers)
        w.join();

    ASSERT_EQ(grant_order.size(), kThreads);
    for (unsigned i = 0; i < kThreads; ++i)
        EXPECT_EQ(grant_order[i], i + 1)
            << "grant order must equal ticket order (FIFO)";
    EXPECT_EQ(eng.directLoad(&g.serialLock), 0u);
    EXPECT_EQ(eng.directLoad(&g.serialNextTicket),
              eng.directLoad(&g.serialServing));
    EXPECT_TRUE(g.watchdog.healthy())
        << "no stall may outlive its waiter";
}

TEST(StallWatchdogTest, DetectsEscalatesAndRecovers)
{
    TmGlobals g;
    RetryPolicy policy = twitchyWatchdogPolicy();
    ThreadStats stats;
    auto count = [&](Counter c) { return stats.get(c); };
    StallAwareWaiter waiter(g, policy, &stats, g.watchdog.serialEpoch);

    // Healthy phase: the budget has not elapsed.
    for (uint64_t i = 0; i < policy.stallBudgetTicks - 1; ++i)
        waiter.step();
    EXPECT_FALSE(waiter.stalled());
    EXPECT_TRUE(g.watchdog.healthy());
    EXPECT_EQ(count(Counter::kStallsDetected), 0u);

    // One more tick exhausts the budget: stall declared, yields first.
    waiter.step();
    EXPECT_TRUE(waiter.stalled());
    EXPECT_FALSE(g.watchdog.healthy());
    EXPECT_EQ(g.watchdog.stallEvents.load(), 1u);
    EXPECT_EQ(count(Counter::kStallsDetected), 1u);
    EXPECT_EQ(count(Counter::kStallYields), 1u);
    EXPECT_EQ(count(Counter::kStallSleeps), 0u);

    // Burn through the yield phase into the sleep escalation.
    for (uint32_t i = 0; i < policy.stallYieldPhase + 3; ++i)
        waiter.step();
    EXPECT_EQ(count(Counter::kStallYields), policy.stallYieldPhase);
    EXPECT_GE(count(Counter::kStallSleeps), 3u);
    EXPECT_EQ(count(Counter::kStallsDetected), 1u)
        << "one stall episode counts once, however long it lasts";

    // The holder moves: the next step recovers and re-arms the budget.
    stampEpoch(g.watchdog.serialEpoch);
    waiter.step();
    EXPECT_FALSE(waiter.stalled());
    EXPECT_TRUE(g.watchdog.healthy());
    EXPECT_EQ(count(Counter::kStallRecoveries), 1u);

    // A fresh stall after recovery is a new episode.
    for (uint64_t i = 0; i <= policy.stallBudgetTicks; ++i)
        waiter.step();
    EXPECT_TRUE(waiter.stalled());
    EXPECT_EQ(count(Counter::kStallsDetected), 2u);
}

TEST(StallWatchdogTest, ZeroBudgetDisablesDetection)
{
    TmGlobals g;
    RetryPolicy policy = twitchyWatchdogPolicy();
    policy.stallBudgetTicks = 0;
    StallAwareWaiter waiter(g, policy, nullptr,
                            g.watchdog.serialEpoch);
    for (int i = 0; i < 500; ++i)
        waiter.step();
    EXPECT_FALSE(waiter.stalled());
    EXPECT_EQ(g.watchdog.stallEvents.load(), 0u);
}

TEST(StallWatchdogTest, DestructorClearsTheHealthGauge)
{
    TmGlobals g;
    RetryPolicy policy = twitchyWatchdogPolicy();
    ThreadStats stats;
    {
        StallAwareWaiter waiter(g, policy, &stats,
                                g.watchdog.clockEpoch);
        for (uint64_t i = 0; i <= policy.stallBudgetTicks; ++i)
            waiter.step();
        EXPECT_FALSE(g.watchdog.healthy());
    }
    // A waiter that unwinds (satisfied, restarted, or aborted) must
    // not leave the runtime permanently reported unhealthy.
    EXPECT_TRUE(g.watchdog.healthy());
    EXPECT_EQ(stats.get(Counter::kStallRecoveries), 1u);
}

TEST(StableClockReadTest, ReturnsImmediatelyWhenUnlocked)
{
    HtmEngine eng;
    TmGlobals g;
    RetryPolicy policy;
    eng.directStore(&g.clock, 42);
    EXPECT_EQ(stableClockRead(eng, g, policy, nullptr), 42u);
    EXPECT_EQ(g.watchdog.stallEvents.load(), 0u);
}

TEST(StableClockReadTest, WaitsOutALockedClockInsteadOfRestarting)
{
    HtmEngine eng;
    TmGlobals g;
    RetryPolicy policy = twitchyWatchdogPolicy();
    eng.directStore(&g.clock, clockWithLock(4));
    std::thread publisher([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        eng.directStore(&g.clock, 6);
        stampEpoch(g.watchdog.clockEpoch);
    });
    uint64_t clock = stableClockRead(eng, g, policy, nullptr);
    publisher.join();
    EXPECT_EQ(clock, 6u);
    EXPECT_FALSE(clockIsLocked(clock));
    EXPECT_TRUE(g.watchdog.healthy());
}

TEST(ProgressIntegrationTest, NoThreadStarvesUnderStallSerialChaos)
{
    // The acceptance scenario: eight threads under the stall-serial
    // schedule (every fallback start 90% aborted, every serial grant
    // followed by a scripted six-figure-spin delay). Starvation or a
    // leaked ticket shows up as a hang or an imbalance; fairness shows
    // up as every thread finishing its quota.
    RuntimeConfig cfg;
    ASSERT_TRUE(makeChaosSchedule("stall-serial", 7, cfg.fault));
    cfg.retry.stallBudgetTicks = 512;
    cfg.retry.stallYieldPhase = 32;
    cfg.retry.stallSleepMinUs = 1;
    cfg.retry.stallSleepMaxUs = 100;
    // Make fallbacks plentiful (the injected fault plan supersedes the
    // engine's randomAbortProb knob, so extend the plan itself) and
    // have every mixed attempt start at the kFallbackStart fault site
    // (the prefix would absorb the first one), so the schedule's 90%
    // restart rule actually drives serial escalation.
    FaultRule begin_kill;
    begin_kill.site = FaultSite::kHtmBegin;
    begin_kill.kind = FaultKind::kAbortConflict;
    begin_kill.period = 1;
    begin_kill.probability = 0.6;
    cfg.fault.add(begin_kill);
    cfg.retry.maxFastPathRetries = 2;
    cfg.rh.enablePrefix = false;
    TmRuntime rt(AlgoKind::kRhNOrec, cfg);

    constexpr unsigned kThreads = 8;
    constexpr unsigned kIters = 25;
    alignas(64) static uint64_t word;
    word = 0;
    std::atomic<unsigned> finished{0};
    test::runThreads(rt, kThreads, [&](unsigned, ThreadCtx &ctx) {
        for (unsigned i = 0; i < kIters; ++i) {
            rt.run(ctx, [&](Txn &tx) {
                tx.store(&word, tx.load(&word) + 1);
            });
        }
        finished.fetch_add(1);
    });

    EXPECT_EQ(finished.load(), kThreads)
        << "every thread must finish its quota (no starvation)";
    EXPECT_EQ(rt.peek(&word), uint64_t(kThreads) * kIters);
    TmGlobals &g = rt.globals();
    EXPECT_EQ(rt.peek(&g.serialLock), 0u);
    EXPECT_EQ(rt.peek(&g.serialNextTicket),
              rt.peek(&g.serialServing))
        << "every taken serial ticket must have been served";
    EXPECT_TRUE(g.watchdog.healthy());
    EXPECT_GT(rt.stats().get(Counter::kSerialAcquires), 0u)
        << "the schedule must actually drive serial mode";
}

} // namespace
} // namespace rhtm
