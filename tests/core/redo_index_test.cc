/**
 * @file
 * Oracle test for the RedoBuffer's open-addressing index (front 2,
 * docs/COMMIT_PATH.md): over randomized write sets -- duplicate
 * overwrites included -- the indexed buffer, the linear-scan baseline,
 * and a std::unordered_map oracle must agree on every lookup, on the
 * surviving value per address, and on the one-entry-per-address
 * publication contract of forEach.
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "src/core/engine/journal.h"
#include "src/util/rng.h"

namespace rhtm
{
namespace
{

struct RedoIndexTest : public ::testing::Test
{
    // Tiny initial index (4 slots) so randomized rounds exercise
    // grow()'s reindex repeatedly, not just the happy path.
    RedoBuffer indexed{2};
    RedoBuffer linear{2};
    std::unordered_map<uint64_t *, uint64_t> oracle;
    // A small address pool makes duplicate overwrites common.
    std::vector<uint64_t> pool = std::vector<uint64_t>(64);

    void
    put(uint64_t *addr, uint64_t value)
    {
        indexed.putGrowing(addr, value);
        linear.putGrowing(addr, value);
        oracle[addr] = value;
    }

    void
    checkLookup(uint64_t *addr)
    {
        uint64_t vi = 0, vl = 0;
        bool hi = indexed.lookup(addr, vi);
        bool hl = linear.lookup(addr, vl);
        auto it = oracle.find(addr);
        ASSERT_EQ(hi, it != oracle.end()) << "indexed hit disagrees";
        ASSERT_EQ(hl, it != oracle.end()) << "linear hit disagrees";
        if (it != oracle.end()) {
            ASSERT_EQ(vi, it->second);
            ASSERT_EQ(vl, it->second);
        }
    }

    /** forEach must visit each address exactly once, final value. */
    void
    checkPublication(const RedoBuffer &buf)
    {
        std::unordered_map<uint64_t *, uint64_t> seen;
        buf.forEach([&](uint64_t *addr, uint64_t value) {
            ASSERT_TRUE(seen.emplace(addr, value).second)
                << "forEach visited an address twice";
        });
        ASSERT_EQ(seen.size(), oracle.size());
        for (const auto &kv : oracle) {
            auto it = seen.find(kv.first);
            ASSERT_NE(it, seen.end());
            ASSERT_EQ(it->second, kv.second);
        }
    }
};

TEST_F(RedoIndexTest, ModeOffIsTheLinearBaseline)
{
    linear.setMode(false, false);
    indexed.setMode(true, true);
    Rng rng(31);
    for (int i = 0; i < 2000; ++i) {
        uint64_t *addr = &pool[rng.nextBounded(pool.size())];
        put(addr, rng.next());
        checkLookup(&pool[rng.nextBounded(pool.size())]);
    }
    EXPECT_EQ(indexed.sizeWords(), oracle.size());
    EXPECT_EQ(linear.sizeWords(), oracle.size());
    checkPublication(indexed);
    checkPublication(linear);
}

TEST_F(RedoIndexTest, RandomizedOracleAgreement)
{
    // 10k randomized operations across repeated transactions
    // (clear() between them), alternating every index/filter mode
    // combination so each clears-then-reuses the same storage.
    Rng rng(7777);
    int ops = 0;
    int txn = 0;
    while (ops < 10000) {
        indexed.clear();
        linear.clear();
        oracle.clear();
        indexed.setMode(true, (txn & 1) != 0);
        linear.setMode(false, (txn & 2) != 0);
        ++txn;
        int n = static_cast<int>(rng.nextRange(1, 300));
        for (int i = 0; i < n; ++i, ++ops) {
            uint64_t *addr = &pool[rng.nextBounded(pool.size())];
            if (rng.nextBounded(100) < 70)
                put(addr, rng.next());
            else
                checkLookup(addr);
        }
        ASSERT_EQ(indexed.sizeWords(), oracle.size());
        ASSERT_EQ(linear.sizeWords(), oracle.size());
        checkPublication(indexed);
        checkPublication(linear);
    }
}

TEST_F(RedoIndexTest, GrowReindexKeepsDuplicateCollapse)
{
    indexed.setMode(true, true);
    linear.setMode(false, false);
    Rng rng(99);
    // Far past several doublings of the 4-slot initial index, with a
    // hot word rewritten between every insertion.
    std::vector<uint64_t> big(4096);
    for (size_t i = 0; i < big.size(); ++i) {
        put(&big[i], i);
        put(&pool[0], i); // The hot word: collapses in place.
    }
    EXPECT_EQ(indexed.sizeWords(), big.size() + 1);
    checkPublication(indexed);
    checkPublication(linear);
    uint64_t v = 0;
    ASSERT_TRUE(indexed.lookup(&pool[0], v));
    EXPECT_EQ(v, big.size() - 1);
}

TEST_F(RedoIndexTest, EmptyBufferMissesAndClearForgets)
{
    indexed.setMode(true, true);
    uint64_t v = 0;
    EXPECT_FALSE(indexed.lookup(&pool[0], v));
    indexed.putGrowing(&pool[0], 7);
    ASSERT_TRUE(indexed.lookup(&pool[0], v));
    EXPECT_EQ(v, 7u);
    indexed.clear();
    EXPECT_TRUE(indexed.empty());
    EXPECT_FALSE(indexed.lookup(&pool[0], v));
}

} // namespace
} // namespace rhtm
