/**
 * @file
 * Tests for the static and adaptive retry policies.
 */

#include <gtest/gtest.h>

#include "src/core/retry_policy.h"

#include "src/api/runtime.h"

namespace rhtm
{
namespace
{

TEST(AdaptiveRetryTest, StaticPolicyReturnsFixedBudget)
{
    RetryPolicy policy;
    policy.adaptive = false;
    policy.maxFastPathRetries = 10;
    AdaptiveRetryBudget budget(policy);
    EXPECT_EQ(budget.budget(), 10u);
    for (int i = 0; i < 100; ++i)
        budget.onFallback(10);
    EXPECT_EQ(budget.budget(), 10u) << "static policy never moves";
}

TEST(AdaptiveRetryTest, StartsMidRange)
{
    RetryPolicy policy;
    policy.adaptive = true;
    policy.adaptiveMinRetries = 2;
    policy.adaptiveMaxRetries = 24;
    AdaptiveRetryBudget budget(policy);
    EXPECT_GE(budget.budget(), 2u);
    EXPECT_LE(budget.budget(), 24u);
    EXPECT_NEAR(budget.budget(), 13, 2);
}

TEST(AdaptiveRetryTest, RepeatedFallbacksShrinkBudget)
{
    RetryPolicy policy;
    policy.adaptive = true;
    AdaptiveRetryBudget budget(policy);
    unsigned initial = budget.budget();
    for (int i = 0; i < 50; ++i)
        budget.onFallback(initial);
    EXPECT_LT(budget.budget(), initial);
    EXPECT_EQ(budget.budget(), policy.adaptiveMinRetries)
        << "hopeless retries converge to the minimum";
}

TEST(AdaptiveRetryTest, RescuedRetriesGrowBudget)
{
    RetryPolicy policy;
    policy.adaptive = true;
    AdaptiveRetryBudget budget(policy);
    unsigned initial = budget.budget();
    for (int i = 0; i < 50; ++i)
        budget.onFastCommit(3); // Retry rescued the transaction.
    EXPECT_GT(budget.budget(), initial);
    EXPECT_GE(budget.budget(), policy.adaptiveMaxRetries - 1)
        << "consistently useful retries converge toward the maximum";
}

TEST(AdaptiveRetryTest, FirstTryCommitsApplySmallRecovery)
{
    RetryPolicy policy;
    policy.adaptive = true;
    AdaptiveRetryBudget budget(policy);
    uint32_t score = budget.score();
    budget.onFastCommit(1);
    EXPECT_GT(budget.score(), score)
        << "a first-try commit is weak healthy-hardware evidence";

    // But much weaker evidence than a rescued retry.
    AdaptiveRetryBudget rescued(policy);
    rescued.onFastCommit(3);
    EXPECT_LT(budget.score() - score, rescued.score() - score);
}

TEST(AdaptiveRetryTest, FirstTryCommitsRecoverFromRareFallbacks)
{
    // Regression: without the first-try recovery, a low-contention
    // workload whose only budget signal is the occasional fallback
    // ratchets monotonically down to adaptiveMinRetries and is stuck
    // there forever, no matter how healthy the hardware is.
    RetryPolicy policy;
    policy.adaptive = true;
    AdaptiveRetryBudget budget(policy);
    for (int i = 0; i < 20; ++i)
        budget.onFallback(policy.maxFastPathRetries);
    EXPECT_EQ(budget.budget(), policy.adaptiveMinRetries);
    for (int i = 0; i < 500; ++i)
        budget.onFastCommit(1); // Long healthy streak.
    EXPECT_GT(budget.budget(), policy.adaptiveMinRetries)
        << "healthy first-try commits must claw the budget back";
}

TEST(AdaptiveRetryTest, MixedSignalsStayWithinBounds)
{
    RetryPolicy policy;
    policy.adaptive = true;
    AdaptiveRetryBudget budget(policy);
    for (int i = 0; i < 200; ++i) {
        if (i % 3 == 0)
            budget.onFallback(5);
        else
            budget.onFastCommit(2);
        EXPECT_GE(budget.budget(), policy.adaptiveMinRetries);
        EXPECT_LE(budget.budget(), policy.adaptiveMaxRetries);
    }
}

TEST(AdaptiveRetryTest, EndToEndWithRhNOrec)
{
    // The adaptive policy must not affect correctness: run a workload
    // with heavy injected aborts under the adaptive budget.
    RuntimeConfig cfg;
    cfg.retry.adaptive = true;
    cfg.htm.randomAbortProb = 2e-3;
    TmRuntime rt(AlgoKind::kRhNOrec, cfg);
    ThreadCtx &ctx = rt.registerThread();
    alignas(64) uint64_t counter = 0;
    for (int i = 0; i < 5000; ++i) {
        rt.run(ctx,
               [&](Txn &tx) { tx.store(&counter, tx.load(&counter) + 1); });
    }
    EXPECT_EQ(rt.peek(&counter), 5000u);
    EXPECT_GT(rt.stats().get(Counter::kFallbacks), 0u);
}

} // namespace
} // namespace rhtm
