/**
 * @file
 * Tests for the static and adaptive retry policies.
 */

#include <gtest/gtest.h>

#include "src/core/retry_policy.h"

#include "src/api/runtime.h"

namespace rhtm
{
namespace
{

TEST(AdaptiveRetryTest, StaticPolicyReturnsFixedBudget)
{
    RetryPolicy policy;
    policy.adaptive = false;
    policy.maxFastPathRetries = 10;
    AdaptiveRetryBudget budget(policy);
    EXPECT_EQ(budget.budget(), 10u);
    for (int i = 0; i < 100; ++i)
        budget.onFallback(10);
    EXPECT_EQ(budget.budget(), 10u) << "static policy never moves";
}

TEST(AdaptiveRetryTest, StartsMidRange)
{
    RetryPolicy policy;
    policy.adaptive = true;
    policy.adaptiveMinRetries = 2;
    policy.adaptiveMaxRetries = 24;
    AdaptiveRetryBudget budget(policy);
    EXPECT_GE(budget.budget(), 2u);
    EXPECT_LE(budget.budget(), 24u);
    EXPECT_NEAR(budget.budget(), 13, 2);
}

TEST(AdaptiveRetryTest, RepeatedFallbacksShrinkBudget)
{
    RetryPolicy policy;
    policy.adaptive = true;
    AdaptiveRetryBudget budget(policy);
    unsigned initial = budget.budget();
    for (int i = 0; i < 50; ++i)
        budget.onFallback(initial);
    EXPECT_LT(budget.budget(), initial);
    EXPECT_EQ(budget.budget(), policy.adaptiveMinRetries)
        << "hopeless retries converge to the minimum";
}

TEST(AdaptiveRetryTest, RescuedRetriesGrowBudget)
{
    RetryPolicy policy;
    policy.adaptive = true;
    AdaptiveRetryBudget budget(policy);
    unsigned initial = budget.budget();
    for (int i = 0; i < 50; ++i)
        budget.onFastCommit(3); // Retry rescued the transaction.
    EXPECT_GT(budget.budget(), initial);
    EXPECT_GE(budget.budget(), policy.adaptiveMaxRetries - 1)
        << "consistently useful retries converge toward the maximum";
}

TEST(AdaptiveRetryTest, FirstTryCommitsApplySmallRecovery)
{
    RetryPolicy policy;
    policy.adaptive = true;
    AdaptiveRetryBudget budget(policy);
    uint32_t score = budget.score();
    budget.onFastCommit(1);
    EXPECT_GT(budget.score(), score)
        << "a first-try commit is weak healthy-hardware evidence";

    // But much weaker evidence than a rescued retry.
    AdaptiveRetryBudget rescued(policy);
    rescued.onFastCommit(3);
    EXPECT_LT(budget.score() - score, rescued.score() - score);
}

TEST(AdaptiveRetryTest, FirstTryCommitsRecoverFromRareFallbacks)
{
    // Regression: without the first-try recovery, a low-contention
    // workload whose only budget signal is the occasional fallback
    // ratchets monotonically down to adaptiveMinRetries and is stuck
    // there forever, no matter how healthy the hardware is.
    RetryPolicy policy;
    policy.adaptive = true;
    AdaptiveRetryBudget budget(policy);
    for (int i = 0; i < 20; ++i)
        budget.onFallback(policy.maxFastPathRetries);
    EXPECT_EQ(budget.budget(), policy.adaptiveMinRetries);
    for (int i = 0; i < 500; ++i)
        budget.onFastCommit(1); // Long healthy streak.
    EXPECT_GT(budget.budget(), policy.adaptiveMinRetries)
        << "healthy first-try commits must claw the budget back";
}

TEST(AdaptiveRetryTest, MixedSignalsStayWithinBounds)
{
    RetryPolicy policy;
    policy.adaptive = true;
    AdaptiveRetryBudget budget(policy);
    for (int i = 0; i < 200; ++i) {
        if (i % 3 == 0)
            budget.onFallback(5);
        else
            budget.onFastCommit(2);
        EXPECT_GE(budget.budget(), policy.adaptiveMinRetries);
        EXPECT_LE(budget.budget(), policy.adaptiveMaxRetries);
    }
}

TEST(AdaptiveRetryTest, SeesKnobChangesMadeAfterConstruction)
{
    // Regression: the budget used to copy the policy at construction,
    // silently freezing `adaptive` and the bounds. The runtime hands
    // every session a reference to the one live RetryPolicy, so a
    // post-construction change (tests and benches do this) must apply.
    RetryPolicy policy;
    policy.adaptive = false;
    policy.maxFastPathRetries = 10;
    AdaptiveRetryBudget budget(policy);
    EXPECT_EQ(budget.budget(), 10u);

    policy.maxFastPathRetries = 3;
    EXPECT_EQ(budget.budget(), 3u)
        << "static budget must track the live policy";

    policy.adaptive = true;
    EXPECT_GE(budget.budget(), policy.adaptiveMinRetries);
    EXPECT_LE(budget.budget(), policy.adaptiveMaxRetries);
}

TEST(ContentionManagerTest, SameSeedProducesIdenticalDelays)
{
    RetryPolicy policy;
    ContentionManager a(policy, nullptr, 42);
    ContentionManager b(policy, nullptr, 42);
    for (int i = 0; i < 64; ++i) {
        WaitCause cause = static_cast<WaitCause>(i % kNumWaitCauses);
        EXPECT_EQ(a.nextDelay(cause), b.nextDelay(cause))
            << "chaos determinism depends on seeded backoff";
    }
}

TEST(ContentionManagerTest, DelaysDoubleWithJitterThenSaturate)
{
    RetryPolicy policy;
    ContentionManager cm(policy, nullptr, 7);
    // The conflict curve starts at 16 and doubles to its 2048 cap;
    // every delay jitters within [raw/2, raw].
    uint64_t raw = 16;
    for (int i = 0; i < 8; ++i) {
        uint32_t delay = cm.nextDelay(WaitCause::kConflict);
        EXPECT_GE(delay, raw / 2);
        EXPECT_LE(delay, raw);
        raw = std::min<uint64_t>(raw * 2, 2048);
    }
    // Saturated: delays stay within the cap's jitter window (or turn
    // into yields, reported as 0).
    for (int i = 0; i < 16; ++i) {
        uint32_t delay = cm.nextDelay(WaitCause::kConflict);
        EXPECT_LE(delay, 2048u);
        if (delay != 0)
            EXPECT_GE(delay, 1024u);
    }
}

TEST(ContentionManagerTest, SaturatedWaitsAlternateSpinWithYield)
{
    RetryPolicy policy;
    ContentionManager cm(policy, nullptr, 9);
    // Drive the capacity curve (base 8, cap 256) to saturation: five
    // doubling steps walk 8, 16, 32, 64, 128; the sixth hits the cap.
    for (int i = 0; i < 5; ++i)
        cm.nextDelay(WaitCause::kCapacity);
    // At the cap every second wait must yield the OS thread so a
    // preempted holder can run even when all waiters are saturated.
    unsigned yields = 0;
    for (int i = 0; i < 10; ++i)
        yields += cm.nextDelay(WaitCause::kCapacity) == 0 ? 1 : 0;
    EXPECT_EQ(yields, 5u);
}

TEST(ContentionManagerTest, CausesKeepIndependentGrowthState)
{
    RetryPolicy policy;
    ContentionManager cm(policy, nullptr, 11);
    // A burst of conflicts must not inflate the first capacity wait.
    for (int i = 0; i < 6; ++i)
        cm.nextDelay(WaitCause::kConflict);
    EXPECT_EQ(cm.level(WaitCause::kConflict), 6u);
    EXPECT_EQ(cm.level(WaitCause::kCapacity), 0u);
    uint32_t first_capacity = cm.nextDelay(WaitCause::kCapacity);
    EXPECT_LE(first_capacity, 8u) << "capacity starts at its own base";

    cm.reset();
    EXPECT_EQ(cm.level(WaitCause::kConflict), 0u);
    uint32_t after_reset = cm.nextDelay(WaitCause::kConflict);
    EXPECT_LE(after_reset, 16u) << "a commit drops back to the base";
}

TEST(ContentionManagerTest, TrippedKillSwitchQuadruplesDelays)
{
    RetryPolicy policy;
    TmGlobals g;
    ContentionManager cm(policy, &g, 13);
    g.killSwitch.cooldown.store(1); // Tripped.
    // First conflict wait: raw 16, quadrupled to 64, jitter [32, 64].
    uint32_t delay = cm.nextDelay(WaitCause::kConflict);
    EXPECT_GE(delay, 32u);
    EXPECT_LE(delay, 64u);
    g.killSwitch.cooldown.store(0);
    // Re-opened: the next wait is back on the plain curve (raw 32).
    delay = cm.nextDelay(WaitCause::kConflict);
    EXPECT_LE(delay, 32u);
}

TEST(ContentionManagerTest, StaticKindReproducesLegacyDoubling)
{
    RetryPolicy policy;
    policy.cm = CmKind::kStatic;
    ContentionManager cm(policy, nullptr, 17);
    // The legacy Backoff: deterministic 1, 2, 4, ... 512, then yields
    // forever -- regardless of the cause.
    uint32_t expected = 1;
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(cm.nextDelay(WaitCause::kConflict), expected);
        expected <<= 1;
    }
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(cm.nextDelay(WaitCause::kCapacity), 0u)
            << "saturated static backoff always yields";
    cm.reset();
    EXPECT_EQ(cm.nextDelay(WaitCause::kRestart), 1u);
}

TEST(ContentionManagerTest, OnWaitReportsTheActionTaken)
{
    RetryPolicy policy;
    policy.cm = CmKind::kStatic;
    ContentionManager cm(policy, nullptr, 19);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(cm.onWait(WaitCause::kConflict),
                  BackoffAction::kSpun);
    EXPECT_EQ(cm.onWait(WaitCause::kConflict),
              BackoffAction::kYielded);
}

TEST(AdaptiveRetryTest, EndToEndWithRhNOrec)
{
    // The adaptive policy must not affect correctness: run a workload
    // with heavy injected aborts under the adaptive budget.
    RuntimeConfig cfg;
    cfg.retry.adaptive = true;
    cfg.htm.randomAbortProb = 2e-3;
    TmRuntime rt(AlgoKind::kRhNOrec, cfg);
    ThreadCtx &ctx = rt.registerThread();
    alignas(64) uint64_t counter = 0;
    for (int i = 0; i < 5000; ++i) {
        rt.run(ctx,
               [&](Txn &tx) { tx.store(&counter, tx.load(&counter) + 1); });
    }
    EXPECT_EQ(rt.peek(&counter), 5000u);
    EXPECT_GT(rt.stats().get(Counter::kFallbacks), 0u);
}

} // namespace
} // namespace rhtm
