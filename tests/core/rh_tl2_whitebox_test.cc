/**
 * @file
 * White-box tests of RH-TL2, pinning the Section 1.2 characteristics:
 * uninstrumented fast-path reads, instrumented fast-path writes
 * (metadata updates only while mixed paths are live), the
 * validate-and-publish commit transaction, and the serialized
 * software-commit fallback.
 */

#include <gtest/gtest.h>

#include "src/api/runtime.h"

namespace rhtm
{
namespace
{

void
forceFallback(ThreadCtx &ctx)
{
    ctx.session().begin(TxnHint::kNone);
    ctx.session().onHtmAbort(HtmAbort{HtmAbortCause::kCapacity, false, 0});
}

struct RhTl2Fixture : public ::testing::Test
{
    RhTl2Fixture() : rt(AlgoKind::kRhTl2) {}

    TmRuntime rt;
    alignas(64) uint64_t x = 1;
    alignas(64) uint64_t y = 2;
    alignas(64) uint64_t z = 3;
};

TEST_F(RhTl2Fixture, FastPathRoundTrip)
{
    ThreadCtx &ca = rt.registerThread();
    TxSession &a = ca.session();
    a.begin(TxnHint::kNone);
    EXPECT_EQ(a.read(&x), 1u);
    a.write(&x, 10);
    EXPECT_EQ(a.read(&x), 10u);
    a.commit();
    a.onComplete();
    EXPECT_EQ(rt.peek(&x), 10u);
    EXPECT_EQ(rt.stats().get(Counter::kCommitsFastPath), 1u);
}

TEST_F(RhTl2Fixture, MixedPathCommitsThroughSmallHtm)
{
    ThreadCtx &cb = rt.registerThread();
    TxSession &b = cb.session();
    forceFallback(cb);
    b.begin(TxnHint::kNone);
    EXPECT_EQ(b.read(&x), 1u);
    b.write(&y, 20);
    EXPECT_EQ(rt.peek(&y), 2u) << "lazy write leaked";
    b.commit();
    b.onComplete();
    EXPECT_EQ(rt.peek(&y), 20u);
    StatsSummary s = rt.stats();
    EXPECT_EQ(s.get(Counter::kPostfixAttempts), 1u)
        << "mixed commit must run in the small HTM";
    EXPECT_EQ(s.get(Counter::kPostfixSuccesses), 1u);
}

TEST_F(RhTl2Fixture, MixedCommitRestartsOnOverwrittenReadSet)
{
    ThreadCtx &cb = rt.registerThread();
    TxSession &b = cb.session();
    forceFallback(cb);
    b.begin(TxnHint::kNone);
    EXPECT_EQ(b.read(&x), 1u);
    b.write(&y, 20);

    // Another slow-path writer overwrites x (bumping its orec).
    ThreadCtx &cc = rt.registerThread();
    TxSession &c = cc.session();
    forceFallback(cc);
    c.begin(TxnHint::kNone);
    c.write(&x, 100);
    c.commit();
    c.onComplete();

    EXPECT_THROW(b.commit(), TxRestart)
        << "validate-at-commit must catch the overwrite";
    b.onRestart();
    EXPECT_EQ(rt.peek(&y), 2u) << "failed commit must not publish";
}

TEST_F(RhTl2Fixture, SlowReaderRestartsAfterFastWriterWhileRegistered)
{
    // Drawback #1's flip side: while a mixed path is live, the fast
    // path updates orecs, so the mixed path detects its commits.
    ThreadCtx &ca = rt.registerThread();
    ThreadCtx &cb = rt.registerThread();
    TxSession &a = ca.session();
    TxSession &b = cb.session();

    forceFallback(cb);
    b.begin(TxnHint::kNone);
    EXPECT_EQ(b.read(&y), 2u); // Snapshot taken; registered.

    a.begin(TxnHint::kNone);
    a.write(&x, 10);
    a.commit(); // Fallbacks > 0: must version x's orec.
    a.onComplete();

    EXPECT_THROW(b.read(&x), TxRestart)
        << "x's orec is beyond b's snapshot";
    b.onRestart();
}

TEST_F(RhTl2Fixture, FastPathSkipsMetadataWhenNoFallbacks)
{
    ThreadCtx &ca = rt.registerThread();
    TxSession &a = ca.session();
    ASSERT_EQ(rt.peek(&rt.globals().fallbacks), 0u);
    a.begin(TxnHint::kNone);
    a.write(&x, 10);
    a.commit(); // No fallbacks: no metadata work (cheap commit).
    a.onComplete();
    EXPECT_EQ(rt.peek(&x), 10u);
}

TEST_F(RhTl2Fixture, SoftwareCommitFallbackSerializesUnderHtmLock)
{
    RuntimeConfig cfg;
    cfg.retry.smallHtmAttempts = 0; // Force the software commit path.
    TmRuntime rt2(AlgoKind::kRhTl2, cfg);
    ThreadCtx &cb = rt2.registerThread();
    TxSession &b = cb.session();
    alignas(64) uint64_t w = 5;

    forceFallback(cb);
    b.begin(TxnHint::kNone);
    b.write(&w, 50);
    b.commit(); // Software path: htmLock bounce + direct write-back.
    b.onComplete();
    EXPECT_EQ(rt2.peek(&w), 50u);
    EXPECT_EQ(rt2.peek(&rt2.globals().htmLock), 0u);
    EXPECT_EQ(rt2.stats().get(Counter::kPostfixAttempts), 0u);
}

TEST_F(RhTl2Fixture, SlowReadersSurviveUnrelatedSlowCommits)
{
    // TL2-style per-location detection: an unrelated commit does not
    // restart a reader (unlike the NOrec family).
    ThreadCtx &cb = rt.registerThread();
    ThreadCtx &cc = rt.registerThread();
    TxSession &b = cb.session();
    TxSession &c = cc.session();

    forceFallback(cb);
    b.begin(TxnHint::kNone);
    EXPECT_EQ(b.read(&x), 1u);

    forceFallback(cc);
    c.begin(TxnHint::kNone);
    c.write(&z, 30); // Unrelated location.
    c.commit();
    c.onComplete();

    EXPECT_EQ(b.read(&y), 2u) << "per-location detection: no restart";
    b.commit();
    b.onComplete();
}

} // namespace
} // namespace rhtm
