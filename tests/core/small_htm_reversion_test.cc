/**
 * @file
 * White-box tests of RH NOrec's small-HTM failure reversion, driven by
 * scripted fault injection: a killed prefix must fall back to the
 * Hybrid-NOrec start-time clock read exactly once, a killed postfix to
 * the raise-the-HTM-lock software write-back exactly once, and the
 * undo log must roll in-place software writes back without leaking the
 * clock, the HTM lock, or a fallback registration.
 */

#include <gtest/gtest.h>

#include "src/api/runtime.h"

namespace rhtm
{
namespace
{

/** One-shot rule: kill the Nth hit of @p site with @p kind. */
FaultRule
oneShot(FaultSite site, FaultKind kind, uint64_t nth = 1)
{
    FaultRule r;
    r.site = site;
    r.kind = kind;
    r.firstHit = nth;
    return r;
}

/**
 * Base config for the reversion tests: the first hardware begin dies
 * with a capacity abort so the transaction lands on the mixed slow
 * path deterministically.
 */
RuntimeConfig
slowPathConfig()
{
    RuntimeConfig cfg;
    cfg.fault.add(
        oneShot(FaultSite::kHtmBegin, FaultKind::kAbortCapacity));
    return cfg;
}

/** Assert no coordination word leaked out of the run. */
void
expectNoLeakedLocks(TmRuntime &rt)
{
    TmGlobals &g = rt.globals();
    EXPECT_FALSE(clockIsLocked(rt.peek(&g.clock))) << "clock leaked";
    EXPECT_EQ(rt.peek(&g.htmLock), 0u) << "HTM lock leaked";
    EXPECT_EQ(rt.peek(&g.fallbacks), 0u) << "fallback registration leaked";
    EXPECT_EQ(rt.peek(&g.serialLock), 0u) << "serial lock leaked";
}

TEST(SmallHtmReversionTest, KilledPrefixRevertsToSoftwareStartOnce)
{
    RuntimeConfig cfg = slowPathConfig();
    // Kill the prefix at its commit point (after it registered the
    // fallback and read the clock inside the hardware transaction).
    cfg.fault.add(
        oneShot(FaultSite::kPrefixCommit, FaultKind::kAbortConflict));
    TmRuntime rt(AlgoKind::kRhNOrec, cfg);
    ThreadCtx &ctx = rt.registerThread();

    alignas(64) static uint64_t x;
    x = 5;
    rt.run(ctx, [&](Txn &tx) {
        tx.store(&x, tx.load(&x) + 1);
    });
    EXPECT_EQ(rt.peek(&x), 6u);

    StatsSummary s = rt.stats();
    EXPECT_EQ(s.get(Counter::kPrefixAttempts), 1u)
        << "the prefix is tried exactly once per transaction";
    EXPECT_EQ(s.get(Counter::kPrefixSuccesses), 0u);
    // The reverted attempt still runs the postfix, which survives.
    EXPECT_EQ(s.get(Counter::kPostfixAttempts), 1u);
    EXPECT_EQ(s.get(Counter::kPostfixSuccesses), 1u);
    EXPECT_EQ(s.get(Counter::kCommitsMixedPath), 1u);
    EXPECT_GE(s.get(Counter::kHtmInjectedAborts), 2u)
        << "the scripted begin and prefix kills both count";
    expectNoLeakedLocks(rt);
}

TEST(SmallHtmReversionTest, KilledPostfixRevertsToHtmLockWriteOnce)
{
    RuntimeConfig cfg = slowPathConfig();
    cfg.fault.add(
        oneShot(FaultSite::kPostfixCommit, FaultKind::kAbortConflict));
    TmRuntime rt(AlgoKind::kRhNOrec, cfg);
    ThreadCtx &ctx = rt.registerThread();

    alignas(64) static uint64_t x;
    x = 7;
    rt.run(ctx, [&](Txn &tx) {
        tx.store(&x, tx.load(&x) + 1);
    });
    EXPECT_EQ(rt.peek(&x), 8u);

    StatsSummary s = rt.stats();
    EXPECT_EQ(s.get(Counter::kPostfixAttempts), 1u)
        << "the postfix is tried exactly once per transaction";
    EXPECT_EQ(s.get(Counter::kPostfixSuccesses), 0u);
    // The prefix committed before the postfix was killed; the rerun
    // must not get a second prefix try.
    EXPECT_EQ(s.get(Counter::kPrefixAttempts), 1u);
    EXPECT_EQ(s.get(Counter::kPrefixSuccesses), 1u);
    EXPECT_EQ(s.get(Counter::kCommitsMixedPath), 1u);
    expectNoLeakedLocks(rt);
}

TEST(SmallHtmReversionTest, UndoLogRollsBackInPlaceSoftwareWrites)
{
    // Pure software writer (both small HTMs disabled): the first write
    // lands in place under the clock + HTM lock, then the second write
    // is killed. The undo log must restore the first value -- a broken
    // rollback would double-apply the increment on the rerun.
    RuntimeConfig cfg = slowPathConfig();
    cfg.rh.enablePrefix = false;
    cfg.rh.enablePostfix = false;
    cfg.fault.add(oneShot(FaultSite::kSoftwareWrite,
                          FaultKind::kAbortOther, 2));
    TmRuntime rt(AlgoKind::kRhNOrec, cfg);
    ThreadCtx &ctx = rt.registerThread();

    alignas(64) static uint64_t x;
    alignas(64) static uint64_t y;
    x = 100;
    y = 200;
    rt.run(ctx, [&](Txn &tx) {
        tx.store(&x, tx.load(&x) + 1);
        tx.store(&y, tx.load(&y) + 1);
    });
    EXPECT_EQ(rt.peek(&x), 101u)
        << "a leaked undo entry double-applies the first write";
    EXPECT_EQ(rt.peek(&y), 201u);

    StatsSummary s = rt.stats();
    EXPECT_EQ(s.get(Counter::kSlowPathRestarts), 1u);
    EXPECT_EQ(s.get(Counter::kCommitsMixedPath), 1u);
    expectNoLeakedLocks(rt);
}

TEST(SmallHtmReversionTest, KilledPostFirstWriteReleasesTheClock)
{
    // Kill the slow path right after it acquires the clock lock but
    // before the postfix starts: rollbackWriter must release the
    // clock (advancing it) and the rerun must commit cleanly.
    RuntimeConfig cfg = slowPathConfig();
    cfg.fault.add(oneShot(FaultSite::kPostFirstWrite,
                          FaultKind::kAbortOther));
    TmRuntime rt(AlgoKind::kRhNOrec, cfg);
    ThreadCtx &ctx = rt.registerThread();

    alignas(64) static uint64_t x;
    x = 9;
    rt.run(ctx, [&](Txn &tx) {
        tx.store(&x, tx.load(&x) + 1);
    });
    EXPECT_EQ(rt.peek(&x), 10u);
    expectNoLeakedLocks(rt);
}

TEST(SmallHtmReversionTest, HybridNOrecUndoRollbackAndLockRelease)
{
    // The eager Hybrid NOrec slow path holds both the clock and the
    // HTM lock across its in-place writes; a mid-write kill must
    // restore values and release both.
    RuntimeConfig cfg = slowPathConfig();
    cfg.fault.add(oneShot(FaultSite::kSoftwareWrite,
                          FaultKind::kAbortOther, 2));
    TmRuntime rt(AlgoKind::kHybridNOrec, cfg);
    ThreadCtx &ctx = rt.registerThread();

    alignas(64) static uint64_t x;
    alignas(64) static uint64_t y;
    x = 100;
    y = 200;
    rt.run(ctx, [&](Txn &tx) {
        tx.store(&x, tx.load(&x) + 1);
        tx.store(&y, tx.load(&y) + 1);
    });
    EXPECT_EQ(rt.peek(&x), 101u);
    EXPECT_EQ(rt.peek(&y), 201u);
    expectNoLeakedLocks(rt);
}

} // namespace
} // namespace rhtm
