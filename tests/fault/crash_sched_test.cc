/**
 * @file
 * CrashScheduler unit tests: global hit counting, one-shot firing,
 * per-thread restriction, and test-isolation reset
 * (docs/PERSISTENCE.md "Crash-site map").
 */

#include <gtest/gtest.h>

#include "src/fault/crash_sched.h"

namespace rhtm
{
namespace
{

TEST(CrashSchedulerTest, FiresOnTheExactGlobalHitOnly)
{
    CrashSchedule sched;
    sched.at(FaultSite::kCrashMidWriteback, 3);
    CrashScheduler cs(sched);

    EXPECT_FALSE(cs.onSite(FaultSite::kCrashMidWriteback, 0));
    EXPECT_FALSE(cs.onSite(FaultSite::kCrashMidWriteback, 1));
    EXPECT_TRUE(cs.onSite(FaultSite::kCrashMidWriteback, 0))
        << "third global hit must fire regardless of thread";
    EXPECT_FALSE(cs.onSite(FaultSite::kCrashMidWriteback, 0))
        << "a scripted point fires at most once";
    EXPECT_EQ(cs.hits(FaultSite::kCrashMidWriteback), 4u);
    EXPECT_EQ(cs.crashesFired(), 1u);
}

TEST(CrashSchedulerTest, SitesCountIndependently)
{
    CrashSchedule sched;
    sched.at(FaultSite::kCrashPreLogSeal, 1);
    sched.at(FaultSite::kCrashPostMarker, 2);
    CrashScheduler cs(sched);

    EXPECT_TRUE(cs.onSite(FaultSite::kCrashPreLogSeal, 0));
    EXPECT_FALSE(cs.onSite(FaultSite::kCrashPostMarker, 0))
        << "hits of one site must not advance another";
    EXPECT_TRUE(cs.onSite(FaultSite::kCrashPostMarker, 0));
    EXPECT_EQ(cs.crashesFired(), 2u);
}

TEST(CrashSchedulerTest, TidRestrictionSkipsOtherThreads)
{
    CrashSchedule sched;
    sched.add(CrashPoint{FaultSite::kCrashPostSealPreWriteback, 2, 1});
    CrashScheduler cs(sched);

    // Hit 2 lands on tid 0: restricted point must not fire, and the
    // missed coordinate never fires later (hits keep advancing).
    EXPECT_FALSE(cs.onSite(FaultSite::kCrashPostSealPreWriteback, 1));
    EXPECT_FALSE(cs.onSite(FaultSite::kCrashPostSealPreWriteback, 0));
    EXPECT_FALSE(cs.onSite(FaultSite::kCrashPostSealPreWriteback, 1));
    EXPECT_EQ(cs.crashesFired(), 0u);

    cs.resetForTest();
    EXPECT_FALSE(cs.onSite(FaultSite::kCrashPostSealPreWriteback, 1));
    EXPECT_TRUE(cs.onSite(FaultSite::kCrashPostSealPreWriteback, 1))
        << "after reset the restricted point fires on its thread";
}

TEST(CrashSchedulerTest, ResetRestoresHitCountersAndFiredFlags)
{
    CrashSchedule sched;
    sched.at(FaultSite::kCrashPostMarker, 1);
    CrashScheduler cs(sched);

    EXPECT_TRUE(cs.onSite(FaultSite::kCrashPostMarker, 0));
    cs.resetForTest();
    EXPECT_EQ(cs.hits(FaultSite::kCrashPostMarker), 0u);
    EXPECT_EQ(cs.crashesFired(), 0u);
    EXPECT_TRUE(cs.onSite(FaultSite::kCrashPostMarker, 0))
        << "the schedule must be re-armed by resetForTest";
}

TEST(CrashSchedulerTest, EmptyScheduleNeverFires)
{
    CrashScheduler cs(CrashSchedule{});
    for (int i = 0; i < 16; ++i)
        EXPECT_FALSE(cs.onSite(FaultSite::kCrashMidWriteback, 0));
    EXPECT_EQ(cs.hits(FaultSite::kCrashMidWriteback), 16u);
}

} // namespace
} // namespace rhtm
