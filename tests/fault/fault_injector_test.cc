/**
 * @file
 * Unit tests for the deterministic fault injector: positional and
 * periodic matching, probability, fire caps, thread filtering,
 * capacity squeezes, and the determinism guarantee the chaos suite
 * builds on.
 */

#include <gtest/gtest.h>

#include "src/fault/fault_injector.h"
#include "src/fault/schedules.h"

namespace rhtm
{
namespace
{

FaultRule
abortRule(FaultSite site, uint64_t first_hit, uint64_t period = 0)
{
    FaultRule r;
    r.site = site;
    r.kind = FaultKind::kAbortConflict;
    r.firstHit = first_hit;
    r.period = period;
    return r;
}

TEST(FaultInjectorTest, OneShotFiresExactlyOnNthHit)
{
    FaultPlan plan;
    plan.add(abortRule(FaultSite::kTxRead, 3));
    FaultInjector inj(plan, 0);
    EXPECT_EQ(inj.fire(FaultSite::kTxRead), FaultKind::kNone);
    EXPECT_EQ(inj.fire(FaultSite::kTxRead), FaultKind::kNone);
    EXPECT_EQ(inj.fire(FaultSite::kTxRead), FaultKind::kAbortConflict);
    EXPECT_EQ(inj.fire(FaultSite::kTxRead), FaultKind::kNone);
    EXPECT_EQ(inj.hits(FaultSite::kTxRead), 4u);
    EXPECT_EQ(inj.fires(FaultSite::kTxRead), 1u);
    EXPECT_EQ(inj.totalFires(), 1u);
}

TEST(FaultInjectorTest, PeriodicRuleFiresOnSchedule)
{
    FaultPlan plan;
    plan.add(abortRule(FaultSite::kPreCommit, 2, 3)); // Hits 2,5,8,...
    FaultInjector inj(plan, 0);
    std::vector<uint64_t> fired;
    for (uint64_t hit = 1; hit <= 12; ++hit) {
        if (inj.fire(FaultSite::kPreCommit) != FaultKind::kNone)
            fired.push_back(hit);
    }
    EXPECT_EQ(fired, (std::vector<uint64_t>{2, 5, 8, 11}));
}

TEST(FaultInjectorTest, MaxFiresCapsARule)
{
    FaultPlan plan;
    FaultRule r = abortRule(FaultSite::kTxWrite, 1, 1);
    r.maxFires = 2;
    plan.add(r);
    FaultInjector inj(plan, 0);
    unsigned fires = 0;
    for (int i = 0; i < 10; ++i) {
        if (inj.fire(FaultSite::kTxWrite) != FaultKind::kNone)
            ++fires;
    }
    EXPECT_EQ(fires, 2u);
}

TEST(FaultInjectorTest, SitesAreIndependent)
{
    FaultPlan plan;
    plan.add(abortRule(FaultSite::kTxRead, 1));
    FaultInjector inj(plan, 0);
    EXPECT_EQ(inj.fire(FaultSite::kTxWrite), FaultKind::kNone);
    EXPECT_EQ(inj.fire(FaultSite::kPreCommit), FaultKind::kNone);
    EXPECT_EQ(inj.fire(FaultSite::kTxRead), FaultKind::kAbortConflict);
}

TEST(FaultInjectorTest, TidFilterDropsOtherThreadsRules)
{
    FaultPlan plan;
    FaultRule r = abortRule(FaultSite::kTxRead, 1, 1);
    r.tid = 2;
    plan.add(r);
    FaultInjector mine(plan, 2);
    FaultInjector other(plan, 3);
    EXPECT_EQ(mine.fire(FaultSite::kTxRead), FaultKind::kAbortConflict);
    EXPECT_EQ(other.fire(FaultSite::kTxRead), FaultKind::kNone);
}

TEST(FaultInjectorTest, ProbabilityZeroNeverFiresProbabilityOneAlways)
{
    FaultPlan plan;
    FaultRule never = abortRule(FaultSite::kTxRead, 1, 1);
    never.probability = 0.0;
    plan.add(never);
    FaultRule always = abortRule(FaultSite::kTxWrite, 1, 1);
    always.probability = 1.0;
    plan.add(always);
    FaultInjector inj(plan, 0);
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(inj.fire(FaultSite::kTxRead), FaultKind::kNone);
        EXPECT_EQ(inj.fire(FaultSite::kTxWrite),
                  FaultKind::kAbortConflict);
    }
}

TEST(FaultInjectorTest, ProbabilityRoughlyMatchesRate)
{
    FaultPlan plan;
    plan.seed = 7;
    FaultRule r = abortRule(FaultSite::kTxRead, 1, 1);
    r.probability = 0.25;
    plan.add(r);
    FaultInjector inj(plan, 0);
    unsigned fires = 0;
    constexpr unsigned kTrials = 20000;
    for (unsigned i = 0; i < kTrials; ++i) {
        if (inj.fire(FaultSite::kTxRead) != FaultKind::kNone)
            ++fires;
    }
    double rate = double(fires) / kTrials;
    EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(FaultInjectorTest, DelayCarriesItsSpinCount)
{
    FaultPlan plan;
    FaultRule r;
    r.site = FaultSite::kPublishWindow;
    r.kind = FaultKind::kDelay;
    r.delaySpins = 1234;
    plan.add(r);
    FaultInjector inj(plan, 0);
    uint32_t spins = 0;
    EXPECT_EQ(inj.fire(FaultSite::kPublishWindow, &spins),
              FaultKind::kDelay);
    EXPECT_EQ(spins, 1234u);
}

TEST(FaultInjectorTest, CapacitySqueezeWindowsCapsAndExpires)
{
    FaultPlan plan;
    FaultRule r;
    r.site = FaultSite::kHtmBegin;
    r.kind = FaultKind::kCapacitySqueeze;
    r.firstHit = 2;
    r.squeezeReadLines = 4;
    r.squeezeWriteLines = 2;
    r.squeezeTxns = 3;
    plan.add(r);
    FaultInjector inj(plan, 0);

    inj.fire(FaultSite::kHtmBegin); // Hit 1: not yet.
    EXPECT_FALSE(inj.squeezeActive());
    EXPECT_EQ(inj.readCapLimit(100), 100u);

    inj.fire(FaultSite::kHtmBegin); // Hit 2: armed for 3 txns.
    EXPECT_TRUE(inj.squeezeActive());
    EXPECT_EQ(inj.readCapLimit(100), 4u);
    EXPECT_EQ(inj.writeCapLimit(100), 2u);
    // A base below the squeeze is never raised.
    EXPECT_EQ(inj.readCapLimit(3), 3u);

    inj.fire(FaultSite::kHtmBegin); // Hits 3,4: still squeezed.
    inj.fire(FaultSite::kHtmBegin);
    EXPECT_TRUE(inj.squeezeActive());

    inj.fire(FaultSite::kHtmBegin); // Hit 5: expired.
    EXPECT_FALSE(inj.squeezeActive());
    EXPECT_EQ(inj.readCapLimit(100), 100u);
}

TEST(FaultInjectorTest, TraceRecordsFirings)
{
    FaultPlan plan;
    plan.recordTrace = true;
    plan.add(abortRule(FaultSite::kTxRead, 2));
    FaultInjector inj(plan, 0);
    inj.fire(FaultSite::kTxRead);
    inj.fire(FaultSite::kTxRead);
    inj.fire(FaultSite::kPreCommit);
    ASSERT_EQ(inj.trace().size(), 1u);
    EXPECT_EQ(inj.trace()[0].site, FaultSite::kTxRead);
    EXPECT_EQ(inj.trace()[0].kind, FaultKind::kAbortConflict);
    EXPECT_EQ(inj.trace()[0].hit, 2u);
}

TEST(FaultInjectorTest, SameSeedSameSequenceIsDeterministic)
{
    FaultPlan plan;
    plan.seed = 99;
    plan.recordTrace = true;
    FaultRule r = abortRule(FaultSite::kTxRead, 1, 1);
    r.probability = 0.3;
    plan.add(r);
    FaultRule d;
    d.site = FaultSite::kPublishWindow;
    d.kind = FaultKind::kDelay;
    d.period = 1;
    d.probability = 0.5;
    d.delaySpins = 10;
    plan.add(d);

    auto runOnce = [&plan](std::vector<FaultEvent> &trace_out) {
        FaultInjector inj(plan, 1);
        for (int i = 0; i < 500; ++i) {
            inj.fire(FaultSite::kTxRead);
            if (i % 3 == 0)
                inj.fire(FaultSite::kPublishWindow);
        }
        trace_out = inj.trace();
        return inj.totalFires();
    };
    std::vector<FaultEvent> a, b;
    uint64_t aFires = runOnce(a);
    uint64_t bFires = runOnce(b);
    EXPECT_EQ(aFires, bFires);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].site, b[i].site);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].hit, b[i].hit);
    }
    EXPECT_GT(aFires, 0u);
}

TEST(FaultInjectorTest, DifferentTidsDecorrelate)
{
    // Same plan, different threads: the probabilistic decisions must
    // not be lockstep-identical across tids (seed mixing).
    FaultPlan plan;
    plan.seed = 5;
    FaultRule r = abortRule(FaultSite::kTxRead, 1, 1);
    r.probability = 0.5;
    plan.add(r);
    FaultInjector a(plan, 0);
    FaultInjector b(plan, 1);
    unsigned diverged = 0;
    for (int i = 0; i < 256; ++i) {
        if (a.fire(FaultSite::kTxRead) != b.fire(FaultSite::kTxRead))
            ++diverged;
    }
    EXPECT_GT(diverged, 0u);
}

TEST(FaultSchedulesTest, AllNamedSchedulesBuild)
{
    for (const std::string &name : chaosScheduleNames()) {
        FaultPlan plan;
        EXPECT_TRUE(makeChaosSchedule(name, 42, plan)) << name;
        EXPECT_FALSE(plan.empty()) << name;
        EXPECT_EQ(plan.seed, 42u) << name;
    }
    FaultPlan plan;
    EXPECT_FALSE(makeChaosSchedule("no-such-schedule", 1, plan));
}

TEST(FaultSiteNamesTest, NamesAreStableAndDistinct)
{
    for (unsigned i = 0; i < kNumFaultSites; ++i) {
        const char *name = faultSiteName(static_cast<FaultSite>(i));
        EXPECT_NE(std::string(name), "unknown");
    }
    EXPECT_STREQ(faultKindName(FaultKind::kAbortCapacity),
                 "abort-capacity");
}

} // namespace
} // namespace rhtm
