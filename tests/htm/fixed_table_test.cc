/**
 * @file
 * Unit tests for the fixed-capacity hash containers.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>

#include "src/htm/fixed_table.h"
#include "src/util/rng.h"

namespace rhtm
{
namespace
{

TEST(FixedHashSetTest, InsertAndContains)
{
    FixedHashSet set(8);
    bool inserted = false;
    EXPECT_TRUE(set.insert(42, inserted));
    EXPECT_TRUE(inserted);
    EXPECT_TRUE(set.contains(42));
    EXPECT_FALSE(set.contains(43));
}

TEST(FixedHashSetTest, DuplicateInsertNotCounted)
{
    FixedHashSet set(8);
    bool inserted = false;
    set.insert(7, inserted);
    EXPECT_TRUE(inserted);
    set.insert(7, inserted);
    EXPECT_FALSE(inserted);
    EXPECT_EQ(set.size(), 1u);
}

TEST(FixedHashSetTest, ZeroKeyWorks)
{
    FixedHashSet set(8);
    bool inserted = false;
    EXPECT_FALSE(set.contains(0));
    set.insert(0, inserted);
    EXPECT_TRUE(inserted);
    EXPECT_TRUE(set.contains(0));
}

TEST(FixedHashSetTest, ClearForgetsEverything)
{
    FixedHashSet set(8);
    bool inserted = false;
    for (uint64_t k = 0; k < 50; ++k)
        set.insert(k, inserted);
    set.clear();
    EXPECT_EQ(set.size(), 0u);
    for (uint64_t k = 0; k < 50; ++k)
        EXPECT_FALSE(set.contains(k));
}

TEST(FixedHashSetTest, ReportsFullAtLoadLimit)
{
    FixedHashSet set(4); // 16 slots -> full at 12 live keys.
    bool inserted = false;
    uint64_t k = 0;
    while (set.insert(k, inserted))
        ++k;
    EXPECT_EQ(set.size(), 12u);
    // Existing keys still answer true even when full.
    EXPECT_TRUE(set.insert(0, inserted));
    EXPECT_FALSE(inserted);
}

TEST(FixedHashSetTest, RandomizedAgainstStdSet)
{
    FixedHashSet set(12);
    std::map<uint64_t, bool> model;
    Rng rng(99);
    for (int i = 0; i < 2000; ++i) {
        uint64_t k = rng.nextBounded(500);
        bool inserted = false;
        ASSERT_TRUE(set.insert(k, inserted));
        EXPECT_EQ(inserted, model.find(k) == model.end());
        model[k] = true;
    }
    for (auto &[k, v] : model)
        EXPECT_TRUE(set.contains(k));
    EXPECT_EQ(set.size(), model.size());
}

TEST(WriteBufferTest, PutLookupRoundTrip)
{
    WriteBuffer buf(8);
    uint64_t slot_a = 0, slot_b = 0;
    EXPECT_TRUE(buf.put(&slot_a, 111));
    EXPECT_TRUE(buf.put(&slot_b, 222));
    uint64_t out = 0;
    EXPECT_TRUE(buf.lookup(&slot_a, out));
    EXPECT_EQ(out, 111u);
    EXPECT_TRUE(buf.lookup(&slot_b, out));
    EXPECT_EQ(out, 222u);
}

TEST(WriteBufferTest, OverwriteKeepsSingleEntry)
{
    WriteBuffer buf(8);
    uint64_t slot = 0;
    buf.put(&slot, 1);
    buf.put(&slot, 2);
    EXPECT_EQ(buf.sizeWords(), 1u);
    uint64_t out = 0;
    ASSERT_TRUE(buf.lookup(&slot, out));
    EXPECT_EQ(out, 2u);
}

TEST(WriteBufferTest, MissingAddressNotFound)
{
    WriteBuffer buf(8);
    uint64_t present = 0, absent = 0;
    buf.put(&present, 5);
    uint64_t out = 0;
    EXPECT_FALSE(buf.lookup(&absent, out));
}

TEST(WriteBufferTest, ForEachVisitsLatestValues)
{
    WriteBuffer buf(8);
    uint64_t slots[10];
    for (int i = 0; i < 10; ++i)
        buf.put(&slots[i], static_cast<uint64_t>(i));
    buf.put(&slots[3], 333);
    std::map<uint64_t *, uint64_t> seen;
    buf.forEach([&](uint64_t *a, uint64_t v) { seen[a] = v; });
    EXPECT_EQ(seen.size(), 10u);
    EXPECT_EQ(seen[&slots[3]], 333u);
    EXPECT_EQ(seen[&slots[7]], 7u);
}

TEST(WriteBufferTest, ClearEmpties)
{
    WriteBuffer buf(8);
    uint64_t slot = 0;
    buf.put(&slot, 1);
    buf.clear();
    EXPECT_TRUE(buf.empty());
    uint64_t out = 0;
    EXPECT_FALSE(buf.lookup(&slot, out));
}

TEST(WriteBufferTest, ReportsFullAtLoadLimit)
{
    WriteBuffer buf(4); // 16 slots -> full at 12 entries.
    std::vector<uint64_t> slots(20);
    size_t accepted = 0;
    for (auto &s : slots) {
        if (!buf.put(&s, 1))
            break;
        ++accepted;
    }
    EXPECT_EQ(accepted, 12u);
}

} // namespace
} // namespace rhtm
