/**
 * @file
 * Property-style sweeps over the simulated HTM: serializability of
 * randomized histories under varying capacity configurations, stripe
 * counts, and injection rates.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "src/htm/htm_txn.h"
#include "src/util/barrier.h"
#include "src/util/rng.h"

namespace rhtm
{
namespace
{

/** (stripeCountLog2, readCap, writeCap, injectProb) */
using HtmParams = std::tuple<unsigned, size_t, size_t, double>;

class HtmPropertyTest : public ::testing::TestWithParam<HtmParams>
{
  protected:
    HtmConfig
    makeConfig() const
    {
        HtmConfig cfg;
        cfg.stripeCountLog2 = std::get<0>(GetParam());
        cfg.readCapacityLines = std::get<1>(GetParam());
        cfg.writeCapacityLines = std::get<2>(GetParam());
        cfg.randomAbortProb = std::get<3>(GetParam());
        return cfg;
    }
};

TEST_P(HtmPropertyTest, ConcurrentTransfersSerialize)
{
    HtmEngine eng(makeConfig());
    constexpr unsigned kThreads = 4;
    constexpr unsigned kSlots = 16;
    constexpr unsigned kOps = 1500;
    struct alignas(64) Slot
    {
        uint64_t value;
    };
    std::vector<Slot> slots(kSlots);
    for (auto &s : slots)
        eng.directStore(&s.value, 10);

    SenseBarrier barrier(kThreads);
    std::atomic<uint64_t> opacity_violations{0};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            ThreadStats stats;
            HtmTxn tx(eng, t, &stats, t + 1);
            Rng rng(t * 97 + 5);
            barrier.arriveAndWait();
            for (unsigned i = 0; i < kOps; ++i) {
                unsigned from = rng.nextBounded(kSlots);
                unsigned to = rng.nextBounded(kSlots);
                // Retry until committed (bounded); a persistently
                // failing op is skipped, which leaves the invariant
                // untouched.
                bool done = false;
                for (int attempt = 0; attempt < 64 && !done; ++attempt) {
                    try {
                        tx.begin();
                        uint64_t sum = 0;
                        for (auto &s : slots)
                            sum += tx.read(&s.value);
                        if (sum != uint64_t(kSlots) * 10)
                            opacity_violations.fetch_add(1);
                        uint64_t f = tx.read(&slots[from].value);
                        uint64_t g = tx.read(&slots[to].value);
                        if (f > 0 && from != to) {
                            tx.write(&slots[from].value, f - 1);
                            tx.write(&slots[to].value, g + 1);
                        }
                        tx.commit();
                        done = true;
                    } catch (const HtmAbort &) {
                        cpuRelax();
                    }
                }
            }
        });
    }
    for (auto &th : threads)
        th.join();

    uint64_t total = 0;
    for (auto &s : slots)
        total += eng.directLoad(&s.value);
    EXPECT_EQ(total, uint64_t(kSlots) * 10);
    EXPECT_EQ(opacity_violations.load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, HtmPropertyTest,
    ::testing::Values(
        HtmParams{16, 4096, 448, 0.0},   // Default model.
        HtmParams{8, 4096, 448, 0.0},    // Few stripes: false sharing.
        HtmParams{20, 4096, 448, 0.0},   // Many stripes.
        HtmParams{16, 64, 64, 0.0},      // Tight capacity.
        HtmParams{16, 4096, 448, 1e-3},  // Injected aborts.
        HtmParams{16, 32, 8, 1e-3}),     // Tight + injected.
    [](const ::testing::TestParamInfo<HtmParams> &info) {
        return "stripes" +
               std::to_string(std::get<0>(info.param)) + "_rcap" +
               std::to_string(std::get<1>(info.param)) + "_wcap" +
               std::to_string(std::get<2>(info.param)) + "_inj" +
               std::to_string(
                   static_cast<int>(std::get<3>(info.param) * 1e6));
    });

TEST(HtmEdgeTest, CapacityZeroWritesAbortsFirstWrite)
{
    HtmConfig cfg;
    cfg.writeCapacityLines = 0;
    HtmEngine eng(cfg);
    HtmTxn tx(eng, 0, nullptr);
    alignas(8) static uint64_t w = 0;
    tx.begin();
    EXPECT_THROW(tx.write(&w, 1), HtmAbort);
}

TEST(HtmEdgeTest, ManySameLineReadsCountOnce)
{
    HtmConfig cfg;
    cfg.readCapacityLines = 1;
    HtmEngine eng(cfg);
    HtmTxn tx(eng, 0, nullptr);
    alignas(64) static uint64_t line[8] = {};
    tx.begin();
    for (int rep = 0; rep < 100; ++rep) {
        for (int i = 0; i < 8; ++i)
            tx.read(&line[i]); // All within one 64-byte line.
    }
    EXPECT_EQ(tx.readLines(), 1u);
    tx.commit();
}

TEST(HtmEdgeTest, SequenceNumberParityInvariant)
{
    HtmEngine eng;
    alignas(8) static uint64_t w = 0;
    for (int i = 0; i < 100; ++i) {
        eng.directStore(&w, i);
        EXPECT_EQ(eng.seq() % 2, 0u)
            << "sequence must be even at quiescence";
    }
}

TEST(HtmEdgeTest, WriteBufferSurvivesManyOverwrites)
{
    HtmEngine eng;
    HtmTxn tx(eng, 0, nullptr);
    alignas(8) static uint64_t w = 0;
    tx.begin();
    for (uint64_t i = 0; i < 10000; ++i)
        tx.write(&w, i); // Same word: one buffer entry, no capacity.
    EXPECT_EQ(tx.read(&w), 9999u);
    EXPECT_EQ(tx.writeLines(), 1u);
    tx.commit();
    EXPECT_EQ(eng.directLoad(&w), 9999u);
}

} // namespace
} // namespace rhtm
