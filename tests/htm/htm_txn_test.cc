/**
 * @file
 * Unit tests for the simulated best-effort HTM.
 *
 * Cross-transaction interleavings are driven deterministically by using
 * two HtmTxn objects from one thread; the engine only cares about the
 * order of API calls, so these tests pin down exact conflict semantics.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/htm/htm_txn.h"

namespace rhtm
{
namespace
{

struct HtmFixture : public ::testing::Test
{
    HtmFixture()
        : eng(makeConfig()), stats0(), stats1(),
          txa(eng, 0, &stats0), txb(eng, 1, &stats1)
    {}

    static HtmConfig
    makeConfig()
    {
        HtmConfig cfg;
        cfg.stripeCountLog2 = 16;
        return cfg;
    }

    HtmEngine eng;
    ThreadStats stats0, stats1;
    HtmTxn txa, txb;
    // Spread words across distinct cache lines.
    alignas(64) uint64_t x = 0;
    alignas(64) uint64_t y = 0;
    alignas(64) uint64_t z = 0;
};

TEST_F(HtmFixture, ReadSeesInitialValue)
{
    x = 17;
    txa.begin();
    EXPECT_EQ(txa.read(&x), 17u);
    txa.commit();
}

TEST_F(HtmFixture, WriteInvisibleUntilCommit)
{
    txa.begin();
    txa.write(&x, 42);
    EXPECT_EQ(eng.directLoad(&x), 0u) << "buffered write leaked";
    txa.commit();
    EXPECT_EQ(eng.directLoad(&x), 42u);
}

TEST_F(HtmFixture, ReadYourOwnWrite)
{
    txa.begin();
    txa.write(&x, 7);
    EXPECT_EQ(txa.read(&x), 7u);
    txa.write(&x, 8);
    EXPECT_EQ(txa.read(&x), 8u);
    txa.commit();
    EXPECT_EQ(eng.directLoad(&x), 8u);
}

TEST_F(HtmFixture, DirectStoreAbortsReader)
{
    txa.begin();
    txa.read(&x);
    eng.directStore(&x, 1);
    EXPECT_THROW(txa.read(&y), HtmAbort);
    EXPECT_FALSE(txa.active());
    EXPECT_EQ(stats0.get(Counter::kHtmConflictAborts), 1u);
}

TEST_F(HtmFixture, DirectStoreAbortsReaderAtCommit)
{
    txa.begin();
    txa.read(&x);
    txa.write(&y, 5);
    eng.directStore(&x, 1);
    EXPECT_THROW(txa.commit(), HtmAbort);
    EXPECT_EQ(eng.directLoad(&y), 0u) << "aborted commit must not publish";
}

TEST_F(HtmFixture, CommittingWriterAbortsConcurrentReader)
{
    txa.begin();
    txa.read(&x);

    txb.begin();
    txb.write(&x, 9);
    txb.commit();

    EXPECT_THROW(txa.read(&y), HtmAbort);
}

TEST_F(HtmFixture, DisjointTransactionsBothCommit)
{
    txa.begin();
    txa.read(&x);
    txa.write(&x, 1);

    txb.begin();
    txb.read(&y);
    txb.write(&y, 2);

    txb.commit();
    txa.commit();
    EXPECT_EQ(eng.directLoad(&x), 1u);
    EXPECT_EQ(eng.directLoad(&y), 2u);
}

TEST_F(HtmFixture, UnrelatedDirectStoreDoesNotAbort)
{
    txa.begin();
    txa.read(&x);
    eng.directStore(&z, 3);
    EXPECT_EQ(txa.read(&y), 0u);
    txa.commit();
}

TEST_F(HtmFixture, AbortedTransactionCanRestart)
{
    txa.begin();
    txa.read(&x);
    eng.directStore(&x, 1);
    EXPECT_THROW(txa.read(&y), HtmAbort);
    txa.begin();
    EXPECT_EQ(txa.read(&x), 1u);
    txa.commit();
}

TEST_F(HtmFixture, ConflictAbortSetsRetryHint)
{
    txa.begin();
    txa.read(&x);
    eng.directStore(&x, 1);
    try {
        txa.read(&y);
        FAIL() << "expected abort";
    } catch (const HtmAbort &a) {
        EXPECT_EQ(a.cause, HtmAbortCause::kConflict);
        EXPECT_TRUE(a.retryOk);
    }
}

TEST_F(HtmFixture, ExplicitAbortCarriesCode)
{
    txa.begin();
    try {
        txa.abortExplicit(0xab);
        FAIL() << "expected abort";
    } catch (const HtmAbort &a) {
        EXPECT_EQ(a.cause, HtmAbortCause::kExplicit);
        EXPECT_EQ(a.code, 0xab);
    }
    EXPECT_EQ(stats0.get(Counter::kHtmExplicitAborts), 1u);
}

TEST_F(HtmFixture, SubscriptionIdiom)
{
    // Fast-path subscription: read a lock word at start; a later store
    // to it must doom the transaction before it can commit writes.
    uint64_t lock_word = 0;
    txa.begin();
    if (txa.read(&lock_word) != 0)
        FAIL() << "lock should start free";
    txa.write(&x, 77);
    eng.directStore(&lock_word, 1); // Slow path takes the lock.
    EXPECT_THROW(txa.commit(), HtmAbort);
    EXPECT_EQ(eng.directLoad(&x), 0u);
}

TEST_F(HtmFixture, ReadOnlyCommitAlwaysSucceedsWhenConsistent)
{
    txa.begin();
    txa.read(&x);
    txa.read(&y);
    txa.commit();
    SUCCEED();
}

TEST_F(HtmFixture, OpacityWithinBody)
{
    // Invariant: x == y at every commit point. A transaction that has
    // read x must never observe a y from a later snapshot.
    eng.directStore(&x, 10);
    eng.directStore(&y, 10);

    txa.begin();
    uint64_t saw_x = txa.read(&x);

    txb.begin();
    txb.write(&x, 11);
    txb.write(&y, 11);
    txb.commit();

    // txa is doomed; it must abort rather than return y == 11 while it
    // already returned x == 10.
    try {
        uint64_t saw_y = txa.read(&y);
        EXPECT_EQ(saw_x, saw_y) << "opacity violated";
        txa.commit();
    } catch (const HtmAbort &) {
        SUCCEED();
    }
}

TEST_F(HtmFixture, DirectCasSemantics)
{
    uint64_t expected = 0;
    EXPECT_TRUE(eng.directCas(&x, expected, 5));
    EXPECT_EQ(eng.directLoad(&x), 5u);
    expected = 0;
    EXPECT_FALSE(eng.directCas(&x, expected, 9));
    EXPECT_EQ(expected, 5u) << "failed CAS must report the observed value";
}

TEST_F(HtmFixture, DirectCasAbortsSubscribedTxn)
{
    txa.begin();
    txa.read(&x);
    uint64_t expected = 0;
    EXPECT_TRUE(eng.directCas(&x, expected, 5));
    EXPECT_THROW(txa.read(&y), HtmAbort);
}

TEST_F(HtmFixture, FailedCasDoesNotAbortReaders)
{
    eng.directStore(&x, 5);
    txa.begin();
    txa.read(&x);
    uint64_t expected = 0;
    EXPECT_FALSE(eng.directCas(&x, expected, 9));
    EXPECT_EQ(txa.read(&y), 0u) << "failed CAS wrote nothing";
    txa.commit();
}

TEST_F(HtmFixture, DirectFetchAddReturnsOld)
{
    eng.directStore(&x, 41);
    EXPECT_EQ(eng.directFetchAdd(&x, 1), 41u);
    EXPECT_EQ(eng.directLoad(&x), 42u);
}

TEST_F(HtmFixture, StatsCountReadWriteLines)
{
    txa.begin();
    txa.read(&x);
    txa.read(&x); // Same line: not counted twice.
    txa.read(&y);
    txa.write(&z, 1);
    EXPECT_EQ(txa.readLines(), 2u);
    EXPECT_EQ(txa.writeLines(), 1u);
    txa.commit();
}

TEST(HtmCapacityTest, WriteCapacityAbortIsNoRetry)
{
    HtmConfig cfg;
    cfg.writeCapacityLines = 4;
    HtmEngine eng(cfg);
    ThreadStats stats;
    HtmTxn tx(eng, 0, &stats);

    std::vector<uint64_t> arr(1024, 0);
    tx.begin();
    try {
        for (size_t i = 0; i < arr.size(); i += 8)
            tx.write(&arr[i], i);
        FAIL() << "expected capacity abort";
    } catch (const HtmAbort &a) {
        EXPECT_EQ(a.cause, HtmAbortCause::kCapacity);
        EXPECT_FALSE(a.retryOk);
    }
    EXPECT_EQ(stats.get(Counter::kHtmCapacityAborts), 1u);
}

TEST(HtmCapacityTest, ReadCapacityAbort)
{
    HtmConfig cfg;
    cfg.readCapacityLines = 4;
    HtmEngine eng(cfg);
    HtmTxn tx(eng, 0, nullptr);

    std::vector<uint64_t> arr(1024, 0);
    tx.begin();
    EXPECT_THROW(
        {
            for (size_t i = 0; i < arr.size(); i += 8)
                tx.read(&arr[i]);
        },
        HtmAbort);
}

TEST(HtmCapacityTest, HyperThreadScalingHalvesCapacity)
{
    HtmConfig cfg;
    cfg.writeCapacityLines = 8;
    cfg.capacityScale = 2;
    cfg.scaledThreadsFrom = 4;
    HtmEngine eng(cfg);

    std::vector<uint64_t> arr(1024, 0);

    auto lines_before_abort = [&](unsigned tid) {
        HtmTxn tx(eng, tid, nullptr);
        tx.begin();
        size_t n = 0;
        try {
            for (size_t i = 0; i < arr.size(); i += 8, ++n)
                tx.write(&arr[i], 1);
        } catch (const HtmAbort &) {
            return n;
        }
        tx.commit();
        return n;
    };

    EXPECT_EQ(lines_before_abort(0), 8u);
    EXPECT_EQ(lines_before_abort(4), 4u);
}

TEST(HtmInjectionTest, ProbabilityOneAlwaysAborts)
{
    HtmConfig cfg;
    cfg.randomAbortProb = 1.0;
    HtmEngine eng(cfg);
    ThreadStats stats;
    HtmTxn tx(eng, 0, &stats);
    uint64_t w = 0;

    tx.begin();
    try {
        tx.read(&w);
        FAIL() << "expected injected abort";
    } catch (const HtmAbort &a) {
        EXPECT_EQ(a.cause, HtmAbortCause::kOther);
        EXPECT_FALSE(a.retryOk);
    }
}

TEST(HtmInjectionTest, ProbabilityZeroNeverAborts)
{
    HtmConfig cfg;
    cfg.randomAbortProb = 0.0;
    HtmEngine eng(cfg);
    HtmTxn tx(eng, 0, nullptr);
    uint64_t w = 0;
    for (int i = 0; i < 1000; ++i) {
        tx.begin();
        tx.read(&w);
        tx.write(&w, i);
        tx.commit();
    }
    EXPECT_EQ(eng.directLoad(&w), 999u);
}

} // namespace
} // namespace rhtm
