/**
 * @file
 * Chaos suite: invariant-conserving bank-transfer workloads over the
 * transactional hash map and red-black tree, run under the named fault
 * schedules (prefix-kill, postfix-kill, capacity-squeeze,
 * delay-in-publish-window) across multiple seeds, checking
 * conservation (no money created or destroyed) and opacity (no
 * transaction body ever observes a torn total). Plus the determinism
 * guarantee: a fixed seed replays the identical fault trace and
 * counters.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <tuple>
#include <vector>

#include "src/api/runtime.h"
#include "src/fault/schedules.h"
#include "src/structures/tx_hashmap.h"
#include "src/structures/tx_rbtree.h"
#include "tests/test_support.h"

namespace rhtm
{
namespace
{

constexpr unsigned kAccounts = 32;
constexpr uint64_t kInitialBalance = 1000;
constexpr uint64_t kTotal = kAccounts * kInitialBalance;

using ChaosParams =
    std::tuple<AlgoKind, std::string /*schedule*/, uint64_t /*seed*/>;

class ChaosTest : public ::testing::TestWithParam<ChaosParams>
{
  protected:
    static RuntimeConfig
    makeConfig(const std::string &schedule, uint64_t seed)
    {
        RuntimeConfig cfg;
        cfg.rngSeed = seed;
        EXPECT_TRUE(makeChaosSchedule(schedule, seed, cfg.fault));
        return cfg;
    }
};

/**
 * Bank transfers over the hash map: account i holds its balance under
 * key i. Writers move random amounts between two accounts; readers sum
 * every account inside one transaction and flag any total that is not
 * exactly kTotal (a torn snapshot = opacity violation, a drifted final
 * total = lost conservation).
 */
TEST_P(ChaosTest, HashMapBankConservesUnderFaults)
{
    auto [kind, schedule, seed] = GetParam();
    TmRuntime rt(kind, makeConfig(schedule, seed));
    TxHashMap bank(8);

    {
        ThreadCtx &setup = rt.registerThread();
        rt.run(setup, [&](Txn &tx) {
            for (uint64_t a = 0; a < kAccounts; ++a)
                bank.put(tx, a, kInitialBalance);
        });
    }

    constexpr unsigned kThreads = 4;
    constexpr unsigned kIters = 300;
    std::atomic<uint64_t> tornTotals{0};
    test::runThreads(rt, kThreads, [&](unsigned t, ThreadCtx &ctx) {
        Rng rng(seed * 977 + t * 131 + 7);
        for (unsigned i = 0; i < kIters; ++i) {
            if (rng.nextPercent(70)) {
                uint64_t from = rng.nextBounded(kAccounts);
                uint64_t to = rng.nextBounded(kAccounts);
                uint64_t amount = 1 + rng.nextBounded(50);
                rt.run(ctx, [&](Txn &tx) {
                    uint64_t balance = 0;
                    bank.get(tx, from, balance);
                    if (balance < amount)
                        return; // No overdrafts; still conserves.
                    bank.put(tx, from, balance - amount);
                    bank.addTo(tx, to, amount);
                });
            } else {
                rt.run(ctx, [&](Txn &tx) {
                    uint64_t sum = 0;
                    for (uint64_t a = 0; a < kAccounts; ++a) {
                        uint64_t balance = 0;
                        bank.get(tx, a, balance);
                        sum += balance;
                    }
                    if (sum != kTotal)
                        tornTotals.fetch_add(1);
                });
            }
        }
    });

    EXPECT_EQ(tornTotals.load(), 0u)
        << "a transaction body observed a torn bank total (opacity)";
    uint64_t finalTotal = 0;
    bank.forEachUnsync(
        [&](uint64_t, uint64_t value) { finalTotal += value; });
    EXPECT_EQ(finalTotal, kTotal) << "money created or destroyed";

    TmGlobals &g = rt.globals();
    EXPECT_FALSE(clockIsLocked(rt.peek(&g.clock)));
    EXPECT_EQ(rt.peek(&g.htmLock), 0u);
    EXPECT_EQ(rt.peek(&g.fallbacks), 0u);
    EXPECT_EQ(rt.peek(&g.serialLock), 0u);
}

/** Same bank, stored in the red-black tree. */
TEST_P(ChaosTest, RbTreeBankConservesUnderFaults)
{
    auto [kind, schedule, seed] = GetParam();
    TmRuntime rt(kind, makeConfig(schedule, seed));
    TxRbTree bank;

    {
        ThreadCtx &setup = rt.registerThread();
        rt.run(setup, [&](Txn &tx) {
            for (int64_t a = 0; a < kAccounts; ++a)
                bank.put(tx, a, kInitialBalance);
        });
    }

    constexpr unsigned kThreads = 4;
    constexpr unsigned kIters = 200;
    std::atomic<uint64_t> tornTotals{0};
    test::runThreads(rt, kThreads, [&](unsigned t, ThreadCtx &ctx) {
        Rng rng(seed * 1409 + t * 251 + 3);
        for (unsigned i = 0; i < kIters; ++i) {
            if (rng.nextPercent(70)) {
                int64_t from = rng.nextBounded(kAccounts);
                int64_t to = rng.nextBounded(kAccounts);
                int64_t amount = 1 + rng.nextBounded(50);
                rt.run(ctx, [&](Txn &tx) {
                    int64_t fromBal = 0, toBal = 0;
                    bank.get(tx, from, fromBal);
                    if (fromBal < amount || from == to)
                        return;
                    bank.get(tx, to, toBal);
                    bank.put(tx, from, fromBal - amount);
                    bank.put(tx, to, toBal + amount);
                });
            } else {
                rt.run(ctx, [&](Txn &tx) {
                    uint64_t sum = 0;
                    for (int64_t a = 0; a < kAccounts; ++a) {
                        int64_t balance = 0;
                        bank.get(tx, a, balance);
                        sum += static_cast<uint64_t>(balance);
                    }
                    if (sum != kTotal)
                        tornTotals.fetch_add(1);
                });
            }
        }
    });

    EXPECT_EQ(tornTotals.load(), 0u)
        << "a transaction body observed a torn bank total (opacity)";
    std::string why;
    EXPECT_TRUE(bank.validateStructure(&why)) << why;
    uint64_t finalTotal = 0;
    ThreadCtx &check = rt.registerThread();
    rt.run(check, [&](Txn &tx) {
        finalTotal = 0; // The body may re-execute under faults.
        for (int64_t a = 0; a < kAccounts; ++a) {
            int64_t balance = 0;
            bank.get(tx, a, balance);
            finalTotal += static_cast<uint64_t>(balance);
        }
    });
    EXPECT_EQ(finalTotal, kTotal) << "money created or destroyed";
}

std::vector<ChaosParams>
chaosCases()
{
    std::vector<ChaosParams> cases;
    for (AlgoKind kind :
         {AlgoKind::kRhNOrec, AlgoKind::kHybridNOrecLazy}) {
        for (const std::string &schedule : chaosScheduleNames()) {
            for (uint64_t seed : {1u, 2u, 3u})
                cases.emplace_back(kind, schedule, seed);
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    SchedulesAndSeeds, ChaosTest, ::testing::ValuesIn(chaosCases()),
    [](const ::testing::TestParamInfo<ChaosParams> &info) {
        std::string name = algoKindName(std::get<0>(info.param));
        name += "_" + std::get<1>(info.param);
        name += "_s" + std::to_string(std::get<2>(info.param));
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

/**
 * Determinism: one thread, fixed seed, traced schedule. Two fresh
 * runtimes executing the identical operation sequence must fire the
 * identical faults (site, kind, hit index) and land on the identical
 * statistics -- this is what makes a failing chaos seed reproducible.
 */
class ChaosDeterminismTest
    : public ::testing::TestWithParam<std::string>
{
};

struct DeterministicRunResult
{
    std::vector<FaultEvent> trace;
    std::array<uint64_t, kNumCounters> counters;
    uint64_t finalTotal;
};

DeterministicRunResult
runDeterministicWorkload(const std::string &schedule, uint64_t seed)
{
    RuntimeConfig cfg;
    cfg.rngSeed = seed;
    EXPECT_TRUE(makeChaosSchedule(schedule, seed, cfg.fault));
    cfg.fault.recordTrace = true;
    TmRuntime rt(AlgoKind::kRhNOrec, cfg);
    ThreadCtx &ctx = rt.registerThread();

    // A static, cache-line-aligned bank: the two runs must present the
    // simulated hardware identical line footprints, so the accounts
    // cannot come from the (layout-varying) transactional heap.
    struct alignas(64) Account
    {
        uint64_t balance;
    };
    static Account accounts[kAccounts];
    rt.run(ctx, [&](Txn &tx) {
        for (uint64_t a = 0; a < kAccounts; ++a)
            tx.store(&accounts[a].balance, kInitialBalance);
    });

    Rng rng(seed * 31 + 5);
    for (unsigned i = 0; i < 400; ++i) {
        uint64_t from = rng.nextBounded(kAccounts);
        uint64_t to = rng.nextBounded(kAccounts);
        uint64_t amount = 1 + rng.nextBounded(20);
        bool wideRead = rng.nextPercent(20);
        rt.run(ctx, [&](Txn &tx) {
            if (wideRead) {
                // A broad footprint so capacity squeezes bite.
                uint64_t sum = 0;
                for (uint64_t a = 0; a < kAccounts; ++a)
                    sum += tx.load(&accounts[a].balance);
                EXPECT_EQ(sum, kTotal);
                return;
            }
            uint64_t balance = tx.load(&accounts[from].balance);
            if (balance < amount)
                return;
            tx.store(&accounts[from].balance, balance - amount);
            tx.store(&accounts[to].balance,
                     tx.load(&accounts[to].balance) + amount);
        });
    }

    DeterministicRunResult result;
    EXPECT_NE(ctx.injector(), nullptr) << "fault plan not plumbed";
    if (ctx.injector() != nullptr)
        result.trace = ctx.injector()->trace();
    result.counters = rt.stats().totals;
    result.finalTotal = 0;
    for (uint64_t a = 0; a < kAccounts; ++a)
        result.finalTotal += rt.peek(&accounts[a].balance);
    return result;
}

TEST_P(ChaosDeterminismTest, FixedSeedReplaysIdenticalFaultSchedule)
{
    const std::string schedule = GetParam();
    DeterministicRunResult a = runDeterministicWorkload(schedule, 17);
    DeterministicRunResult b = runDeterministicWorkload(schedule, 17);

    ASSERT_EQ(a.trace.size(), b.trace.size())
        << "fault firing count diverged between identical runs";
    for (size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].site, b.trace[i].site) << "event " << i;
        EXPECT_EQ(a.trace[i].kind, b.trace[i].kind) << "event " << i;
        EXPECT_EQ(a.trace[i].hit, b.trace[i].hit) << "event " << i;
    }
    for (unsigned c = 0; c < kNumCounters; ++c) {
        EXPECT_EQ(a.counters[c], b.counters[c])
            << "counter " << c << " diverged";
    }
    EXPECT_EQ(a.finalTotal, kTotal);
    EXPECT_EQ(b.finalTotal, kTotal);

    // A different seed must produce a different schedule (otherwise
    // the seed isn't actually feeding the probabilistic rules).
    if (schedule != "capacity-squeeze") { // Purely positional rules.
        DeterministicRunResult c = runDeterministicWorkload(schedule, 18);
        bool identical = c.trace.size() == a.trace.size();
        if (identical) {
            for (size_t i = 0; i < a.trace.size(); ++i) {
                if (a.trace[i].site != c.trace[i].site ||
                    a.trace[i].hit != c.trace[i].hit) {
                    identical = false;
                    break;
                }
            }
        }
        EXPECT_FALSE(identical && !a.trace.empty())
            << "seed change did not perturb the schedule";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedules, ChaosDeterminismTest,
    ::testing::ValuesIn(chaosScheduleNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace rhtm
