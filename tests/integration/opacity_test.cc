/**
 * @file
 * Integration suite for the correctness obligations of DESIGN.md §4:
 * opacity and serializability under every algorithm, with and without
 * interrupt-style abort injection, using an invariant-machine that
 * checks consistency *inside* running transaction bodies.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <tuple>
#include <vector>

#include "src/api/runtime.h"
#include "tests/test_support.h"

namespace rhtm
{
namespace
{

using OpacityParams = std::tuple<AlgoKind, bool /*inject*/>;

class OpacityTest : public ::testing::TestWithParam<OpacityParams>
{
};

/**
 * Invariant machine: K registers initialised so that r[i] == seed + i,
 * and every writer rotates all registers by the same delta. Any
 * transactional snapshot must therefore satisfy r[i] - r[0] == i for
 * every i -- checked after *every* read inside the body, which is
 * exactly the opacity obligation (a doomed transaction may restart,
 * but must never expose a mixed snapshot).
 */
TEST_P(OpacityTest, InvariantVisibleAtEveryReadInsideBody)
{
    auto [kind, inject] = GetParam();
    RuntimeConfig cfg;
    if (inject)
        cfg.htm.randomAbortProb = 1e-3;
    TmRuntime rt(kind, cfg);

    constexpr unsigned kRegisters = 24;
    constexpr unsigned kThreads = 4;
    constexpr unsigned kIters = 900;
    struct alignas(64) Register
    {
        uint64_t value;
    };
    std::vector<Register> regs(kRegisters);
    for (unsigned i = 0; i < kRegisters; ++i)
        regs[i].value = 1000 + i;

    std::atomic<uint64_t> violations{0};
    test::runThreads(rt, kThreads, [&](unsigned t, ThreadCtx &ctx) {
        Rng rng(t * 131 + 3);
        for (unsigned i = 0; i < kIters; ++i) {
            if (rng.nextPercent(40)) {
                // Writer: rotate every register by the same delta.
                uint64_t delta = 1 + rng.nextBounded(5);
                rt.run(ctx, [&](Txn &tx) {
                    for (auto &r : regs) {
                        tx.store(&r.value, tx.load(&r.value) + delta);
                    }
                });
            } else {
                // Reader: check the offset invariant after every read.
                rt.run(ctx, [&](Txn &tx) {
                    uint64_t base = tx.load(&regs[0].value);
                    for (unsigned k = 1; k < kRegisters; ++k) {
                        uint64_t v = tx.load(&regs[k].value);
                        if (v != base + k) {
                            violations.fetch_add(1);
                            break;
                        }
                    }
                });
            }
        }
    });

    EXPECT_EQ(violations.load(), 0u) << "opacity violated in a body";
    uint64_t base = rt.peek(&regs[0].value);
    for (unsigned k = 0; k < kRegisters; ++k) {
        EXPECT_EQ(rt.peek(&regs[k].value), base + k)
            << "final state violates the rotation invariant";
    }
}

/**
 * Snapshot monotonicity: a global version counter is incremented by
 * every writer together with a shadow copy; any reader must observe
 * counter == shadow (they are only ever updated together).
 */
TEST_P(OpacityTest, PairedWordsNeverObservedTorn)
{
    auto [kind, inject] = GetParam();
    RuntimeConfig cfg;
    if (inject)
        cfg.htm.randomAbortProb = 1e-3;
    TmRuntime rt(kind, cfg);

    alignas(64) static uint64_t counter;
    alignas(64) static uint64_t shadow;
    counter = 0;
    shadow = 0;

    constexpr unsigned kThreads = 4;
    constexpr unsigned kIters = 1500;
    std::atomic<uint64_t> torn{0};
    test::runThreads(rt, kThreads, [&](unsigned t, ThreadCtx &ctx) {
        Rng rng(t + 41);
        for (unsigned i = 0; i < kIters; ++i) {
            if (rng.nextPercent(50)) {
                rt.run(ctx, [&](Txn &tx) {
                    uint64_t v = tx.load(&counter);
                    tx.store(&counter, v + 1);
                    tx.store(&shadow, v + 1);
                });
            } else {
                rt.run(ctx,
                       [&](Txn &tx) {
                           uint64_t c = tx.load(&counter);
                           uint64_t s = tx.load(&shadow);
                           if (c != s)
                               torn.fetch_add(1);
                       },
                       TxnHint::kReadOnly);
            }
        }
    });
    EXPECT_EQ(torn.load(), 0u);
    EXPECT_EQ(rt.peek(&counter), rt.peek(&shadow));
}

std::vector<OpacityParams>
opacityCases()
{
    std::vector<OpacityParams> cases;
    for (AlgoKind kind : allAlgoKinds()) {
        cases.emplace_back(kind, false);
        cases.emplace_back(kind, true);
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsWithAndWithoutInjection, OpacityTest,
    ::testing::ValuesIn(opacityCases()),
    [](const ::testing::TestParamInfo<OpacityParams> &info) {
        std::string name = algoKindName(std::get<0>(info.param));
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name + (std::get<1>(info.param) ? "_inject" : "_clean");
    });

} // namespace
} // namespace rhtm
