/**
 * @file
 * Dedicated privatization suite (DESIGN.md §4): the property RH NOrec
 * preserves and RH-TL2 gave up (paper Sections 1.2-1.3). Exercises the
 * two classic hazards: the "delayed cleanup" problem (a doomed
 * transaction writing into privatized memory) and the "doomed reader"
 * problem (a zombie observing private writes), both under abort
 * injection.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/api/runtime.h"
#include "tests/test_support.h"

namespace rhtm
{
namespace
{

class PrivatizationTest : public ::testing::TestWithParam<AlgoKind>
{
};

TEST_P(PrivatizationTest, DetachedRegionSafeForPrivateUse)
{
    RuntimeConfig cfg;
    cfg.htm.randomAbortProb = 5e-4; // Keep every path busy.
    TmRuntime rt(GetParam(), cfg);

    struct alignas(64) Region
    {
        uint64_t a;
        uint64_t b;
    };
    constexpr unsigned kRounds = 150;
    constexpr unsigned kMutators = 3;
    std::vector<Region> regions(kRounds);
    alignas(64) static Region *shared;
    shared = nullptr;

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> lost_updates{0};
    std::atomic<uint64_t> dirty_reads{0};

    test::runThreads(rt, kMutators + 1, [&](unsigned t, ThreadCtx &ctx) {
        if (t == 0) {
            for (unsigned r = 0; r < kRounds; ++r) {
                rt.poke(&regions[r].a, 0);
                rt.poke(&regions[r].b, 0);
                rt.run(ctx, [&](Txn &tx) {
                    tx.storePtr(&shared, &regions[r]);
                });
                for (volatile int spin = 0; spin < 3000; ++spin) {
                }
                // Privatize.
                rt.run(ctx, [&](Txn &tx) {
                    tx.storePtr(&shared, static_cast<Region *>(nullptr));
                });
                // Private phase: updates must stick (no delayed
                // transactional write may clobber them), and the pair
                // must stay consistent (no zombie ever wrote half).
                uint64_t a = rt.peek(&regions[r].a);
                uint64_t b = rt.peek(&regions[r].b);
                if (a != b)
                    dirty_reads.fetch_add(1);
                rt.poke(&regions[r].a, a + 7);
                rt.poke(&regions[r].b, b + 7);
                for (volatile int spin = 0; spin < 3000; ++spin) {
                }
                if (rt.peek(&regions[r].a) != a + 7 ||
                    rt.peek(&regions[r].b) != b + 7) {
                    lost_updates.fetch_add(1);
                }
            }
            stop.store(true);
        } else {
            Rng rng(t + 9);
            while (!stop.load(std::memory_order_relaxed)) {
                rt.run(ctx, [&](Txn &tx) {
                    Region *p = tx.loadPtr(&shared);
                    if (!p)
                        return;
                    // Paired update: a and b move together.
                    uint64_t v = tx.load(&p->a) + 1;
                    tx.store(&p->a, v);
                    tx.store(&p->b, v);
                });
                (void)rng;
            }
        }
    });

    EXPECT_EQ(lost_updates.load(), 0u)
        << "a delayed transactional write clobbered private memory";
    EXPECT_EQ(dirty_reads.load(), 0u)
        << "privatized region observed in a torn state";
}

std::vector<AlgoKind>
privatizationSafeKinds()
{
    // The TL2 family does not promise privatization (Section 1.2).
    return {AlgoKind::kLockElision,     AlgoKind::kNOrec,
            AlgoKind::kNOrecLazy,       AlgoKind::kHybridNOrec,
            AlgoKind::kHybridNOrecLazy, AlgoKind::kRhNOrec};
}

INSTANTIATE_TEST_SUITE_P(
    PrivatizationSafeAlgorithms, PrivatizationTest,
    ::testing::ValuesIn(privatizationSafeKinds()),
    [](const ::testing::TestParamInfo<AlgoKind> &info) {
        std::string name = algoKindName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace rhtm
