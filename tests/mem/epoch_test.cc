/**
 * @file
 * Unit tests for epoch-based reclamation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/mem/epoch.h"
#include "src/mem/memory_manager.h"

namespace rhtm
{
namespace
{

TEST(EpochTest, AdvancesWhenAllQuiescent)
{
    EpochManager em;
    uint64_t e0 = em.currentEpoch();
    EXPECT_TRUE(em.tryAdvance());
    EXPECT_EQ(em.currentEpoch(), e0 + 1);
}

TEST(EpochTest, ActiveThreadBlocksAdvance)
{
    EpochManager em;
    em.enterRegion(0);
    uint64_t announced = em.currentEpoch();
    // Thread 0 announced the current epoch, so one advance succeeds
    // (everyone active has seen it)...
    EXPECT_TRUE(em.tryAdvance());
    // ...but the next is blocked until thread 0 re-announces or exits.
    EXPECT_FALSE(em.tryAdvance());
    EXPECT_EQ(em.currentEpoch(), announced + 1);
    em.exitRegion(0);
    EXPECT_TRUE(em.tryAdvance());
}

TEST(EpochTest, ReclaimableLagsByTwo)
{
    EpochManager em;
    uint64_t e = em.currentEpoch();
    EXPECT_EQ(em.reclaimableEpoch(), e - 2);
}

TEST(MemoryManagerTest, RegisterAssignsDistinctTids)
{
    MemoryManager mgr;
    ThreadMem &a = mgr.registerThread();
    ThreadMem &b = mgr.registerThread();
    EXPECT_NE(a.tid(), b.tid());
    EXPECT_EQ(mgr.threadCount(), 2u);
}

TEST(MemoryManagerTest, TxFreeDeferredUntilCommit)
{
    MemoryManager mgr;
    ThreadMem &tm = mgr.registerThread();
    void *p = tm.rawAlloc(64);
    tm.txFree(p, 64);
    EXPECT_EQ(tm.limboSize(), 0u) << "free must wait for commit";
    tm.onCommit();
    EXPECT_EQ(tm.limboSize(), 1u);
    mgr.drainAll();
    EXPECT_EQ(tm.limboSize(), 0u);
}

TEST(MemoryManagerTest, AbortDropsFreesAndRetiresAllocs)
{
    MemoryManager mgr;
    ThreadMem &tm = mgr.registerThread();
    void *kept = tm.rawAlloc(64);
    void *fresh = tm.txAlloc(64);
    EXPECT_NE(fresh, nullptr);
    tm.txFree(kept, 64);
    tm.onAbort();
    // The journaled free of `kept` is dropped; the aborted allocation
    // is retired (not instantly reusable).
    EXPECT_EQ(tm.limboSize(), 1u);
    mgr.drainAll();
}

TEST(MemoryManagerTest, ReclaimRespectsGracePeriod)
{
    MemoryManager mgr;
    ThreadMem &t0 = mgr.registerThread();
    ThreadMem &t1 = mgr.registerThread();
    (void)t1;

    // Thread 1 is inside a region announced at the current epoch.
    mgr.epochs().enterRegion(1);

    void *p = t0.rawAlloc(64);
    t0.txFree(p, 64);
    t0.onCommit();
    ASSERT_EQ(t0.limboSize(), 1u);

    // One advance is possible (thread 1 announced current), then the
    // epoch is stuck; the block's grace period cannot pass.
    mgr.epochs().tryAdvance();
    mgr.epochs().tryAdvance();
    t0.reclaim();
    EXPECT_EQ(t0.limboSize(), 1u)
        << "block reclaimed while a pre-free reader may be live";

    mgr.epochs().exitRegion(1);
    mgr.drainAll();
    EXPECT_EQ(t0.limboSize(), 0u);
}

TEST(MemoryManagerTest, CommitRetiredBlockEventuallyReused)
{
    MemoryManager mgr;
    ThreadMem &tm = mgr.registerThread();
    void *p = tm.txAlloc(64);
    tm.onCommit();
    tm.txFree(p, 64);
    tm.onCommit();
    mgr.drainAll();
    void *q = tm.rawAlloc(64);
    EXPECT_EQ(p, q) << "block should cycle back through the pool";
}

TEST(MemoryManagerTest, ConcurrentEnterExitStress)
{
    MemoryManager mgr;
    constexpr int kThreads = 4;
    std::vector<ThreadMem *> mems;
    for (int i = 0; i < kThreads; ++i)
        mems.push_back(&mgr.registerThread());

    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            ThreadMem &tm = *mems[t];
            while (!stop.load(std::memory_order_relaxed)) {
                mgr.epochs().enterRegion(tm.tid());
                void *p = tm.txAlloc(48);
                tm.txFree(p, 48);
                // Free-then-commit of our own fresh alloc: journal has
                // both; commit retires the free.
                tm.onCommit();
                mgr.epochs().exitRegion(tm.tid());
            }
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop.store(true);
    for (auto &th : threads)
        th.join();
    mgr.drainAll();
    for (auto *tm : mems)
        EXPECT_EQ(tm->limboSize(), 0u);
}

} // namespace
} // namespace rhtm
