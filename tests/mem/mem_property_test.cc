/**
 * @file
 * Property-style stress of the memory substrate: canary-checked
 * epoch reclamation (no block is recycled while a reader inside a
 * transactional region may still hold it) and randomized pool
 * alloc/free patterns.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "src/mem/memory_manager.h"
#include "src/util/rng.h"

namespace rhtm
{
namespace
{

TEST(MemPropertyTest, NoReuseWhilePotentialReaderLive)
{
    // Writer threads continuously publish blocks, unlink them, and
    // retire them; reader threads enter epochs, grab the published
    // pointer, and re-check its canary while "inside a transaction".
    // Reclaiming too early would let the canary change under a live
    // reader.
    MemoryManager mgr;
    constexpr unsigned kWriters = 2;
    constexpr unsigned kReaders = 2;
    constexpr uint64_t kCanary = 0xfeedfacecafebeefull;

    struct Block
    {
        uint64_t canary;
        uint64_t payload[6];
    };

    std::vector<ThreadMem *> mems;
    for (unsigned i = 0; i < kWriters + kReaders; ++i)
        mems.push_back(&mgr.registerThread());

    std::atomic<Block *> published{nullptr};
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> torn_canaries{0};

    std::vector<std::thread> threads;
    for (unsigned w = 0; w < kWriters; ++w) {
        threads.emplace_back([&, w] {
            ThreadMem &tm = *mems[w];
            while (!stop.load(std::memory_order_relaxed)) {
                mgr.epochs().enterRegion(tm.tid());
                auto *b = static_cast<Block *>(tm.txAlloc(sizeof(Block)));
                b->canary = kCanary;
                published.store(b, std::memory_order_release);
                tm.onCommit();
                mgr.epochs().exitRegion(tm.tid());

                // Unlink and retire in a second "transaction".
                mgr.epochs().enterRegion(tm.tid());
                Block *mine =
                    published.exchange(nullptr, std::memory_order_acq_rel);
                if (mine)
                    tm.txFree(mine, sizeof(Block));
                tm.onCommit();
                mgr.epochs().exitRegion(tm.tid());
            }
        });
    }
    for (unsigned r = 0; r < kReaders; ++r) {
        threads.emplace_back([&, r] {
            ThreadMem &tm = *mems[kWriters + r];
            Rng rng(r + 3);
            while (!stop.load(std::memory_order_relaxed)) {
                mgr.epochs().enterRegion(tm.tid());
                Block *b = published.load(std::memory_order_acquire);
                if (b) {
                    // We announced our epoch before loading the
                    // pointer; the block cannot be recycled (and its
                    // canary overwritten by a new owner) until we exit.
                    for (int i = 0; i < 50; ++i) {
                        uint64_t c = std::atomic_ref<uint64_t>(b->canary)
                                         .load(std::memory_order_acquire);
                        if (c != kCanary) {
                            // Any other value (including a fresh
                            // zeroed block) means illegal recycling.
                            torn_canaries.fetch_add(1);
                            break;
                        }
                    }
                }
                mgr.epochs().exitRegion(tm.tid());
            }
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    stop.store(true);
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(torn_canaries.load(), 0u)
        << "a block was recycled while an epoch-protected reader held it";
    mgr.drainAll();
}

TEST(MemPropertyTest, RandomizedPoolPatternsNeverOverlap)
{
    PoolAllocator pool;
    Rng rng(2024);
    struct Live
    {
        unsigned char *ptr;
        size_t size;
        unsigned char tag;
    };
    std::vector<Live> live;
    unsigned char next_tag = 1;

    for (int step = 0; step < 20000; ++step) {
        bool do_alloc = live.empty() || rng.nextPercent(55);
        if (do_alloc && live.size() < 500) {
            size_t size = 1 + rng.nextBounded(512);
            auto *p = static_cast<unsigned char *>(pool.alloc(size));
            std::memset(p, next_tag, size);
            live.push_back({p, size, next_tag});
            next_tag = next_tag == 255 ? 1 : next_tag + 1;
        } else {
            size_t idx = rng.nextBounded(live.size());
            Live &l = live[idx];
            for (size_t i = 0; i < l.size; ++i) {
                ASSERT_EQ(l.ptr[i], l.tag)
                    << "block " << idx << " clobbered at offset " << i;
            }
            pool.free(l.ptr, l.size);
            live[idx] = live.back();
            live.pop_back();
        }
    }
    for (Live &l : live) {
        for (size_t i = 0; i < l.size; ++i)
            ASSERT_EQ(l.ptr[i], l.tag);
        pool.free(l.ptr, l.size);
    }
}

TEST(MemPropertyTest, EpochAdvanceUnderChurn)
{
    // The global epoch must keep advancing while threads cycle through
    // regions (no livelock in tryAdvance bookkeeping).
    MemoryManager mgr;
    constexpr unsigned kThreads = 4;
    std::vector<ThreadMem *> mems;
    for (unsigned i = 0; i < kThreads; ++i)
        mems.push_back(&mgr.registerThread());

    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            ThreadMem &tm = *mems[t];
            while (!stop.load(std::memory_order_relaxed)) {
                mgr.epochs().enterRegion(tm.tid());
                void *p = tm.txAlloc(64);
                tm.txFree(p, 64);
                tm.onCommit();
                mgr.epochs().exitRegion(tm.tid());
            }
        });
    }
    uint64_t e0 = mgr.epochs().currentEpoch();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    stop.store(true);
    for (auto &t : threads)
        t.join();
    EXPECT_GT(mgr.epochs().currentEpoch(), e0)
        << "epoch stalled under constant churn";
    mgr.drainAll();
    for (auto *tm : mems)
        EXPECT_EQ(tm->limboSize(), 0u);
}

} // namespace
} // namespace rhtm
