/**
 * @file
 * Unit tests for the per-thread pool allocator.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include "src/mem/pool_allocator.h"

namespace rhtm
{
namespace
{

TEST(PoolAllocatorTest, AllocationsAreZeroed)
{
    PoolAllocator pool;
    for (size_t sz : {8u, 64u, 100u, 4096u}) {
        char *p = static_cast<char *>(pool.alloc(sz));
        for (size_t i = 0; i < sz; ++i)
            ASSERT_EQ(p[i], 0) << "size " << sz << " offset " << i;
        pool.free(p, sz);
    }
}

TEST(PoolAllocatorTest, AllocationsAreAligned)
{
    PoolAllocator pool;
    for (size_t sz : {1u, 8u, 17u, 33u, 128u, 4000u}) {
        void *p = pool.alloc(sz);
        EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
        pool.free(p, sz);
    }
}

TEST(PoolAllocatorTest, FreedBlockIsReused)
{
    PoolAllocator pool;
    void *a = pool.alloc(64);
    pool.free(a, 64);
    void *b = pool.alloc(64);
    EXPECT_EQ(a, b) << "LIFO free list should hand the block back";
    pool.free(b, 64);
}

TEST(PoolAllocatorTest, DistinctLiveBlocksDoNotOverlap)
{
    PoolAllocator pool;
    constexpr size_t kCount = 1000;
    constexpr size_t kSize = 48;
    std::vector<char *> blocks;
    for (size_t i = 0; i < kCount; ++i) {
        char *p = static_cast<char *>(pool.alloc(kSize));
        std::memset(p, static_cast<int>(i & 0xff), kSize);
        blocks.push_back(p);
    }
    for (size_t i = 0; i < kCount; ++i) {
        for (size_t j = 0; j < kSize; ++j) {
            ASSERT_EQ(static_cast<unsigned char>(blocks[i][j]), i & 0xff)
                << "block " << i << " was clobbered";
        }
    }
    for (char *p : blocks)
        pool.free(p, kSize);
}

TEST(PoolAllocatorTest, LargeAllocationsFallThrough)
{
    PoolAllocator pool;
    void *p = pool.alloc(1 << 20);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xab, 1 << 20);
    pool.free(p, 1 << 20);
}

TEST(PoolAllocatorTest, ZeroSizeIsLegal)
{
    PoolAllocator pool;
    void *p = pool.alloc(0);
    ASSERT_NE(p, nullptr);
    pool.free(p, 0);
}

TEST(PoolAllocatorTest, CrossPoolFreeIsLegal)
{
    PoolAllocator a, b;
    void *p = a.alloc(64);
    b.free(p, 64);
    // b now owns the block on its free list and can hand it out.
    void *q = b.alloc(64);
    EXPECT_EQ(p, q);
    b.free(q, 64);
}

TEST(PoolAllocatorTest, ReservedBytesGrowInChunks)
{
    PoolAllocator pool;
    EXPECT_EQ(pool.bytesReserved(), 0u);
    void *p = pool.alloc(64);
    EXPECT_GE(pool.bytesReserved(), 64u * 1024);
    pool.free(p, 64);
}

TEST(PoolAllocatorTest, ManySizeClassesRoundTrip)
{
    PoolAllocator pool;
    std::vector<std::pair<void *, size_t>> live;
    for (size_t sz = 1; sz <= 4096; sz += 37)
        live.emplace_back(pool.alloc(sz), sz);
    std::set<void *> unique;
    for (auto &[p, sz] : live)
        unique.insert(p);
    EXPECT_EQ(unique.size(), live.size());
    for (auto &[p, sz] : live)
        pool.free(p, sz);
}

} // namespace
} // namespace rhtm
