/**
 * @file
 * ThreadMem journal lifecycle: abort retires journaled allocations and
 * drops journaled frees, and a ThreadMem destroyed with a live journal
 * (its owner unwound without commit or abort) applies the same
 * clear-and-retire semantics instead of leaking or double-freeing.
 * Sanitizer builds turn the live-journal destructor case into a hard
 * abort, so that test is compiled out under RHTM_SANITIZE_BUILD.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "src/mem/memory_manager.h"

namespace rhtm
{
namespace
{

TEST(ThreadMemLifecycleTest, AbortRetiresAllocationsAndDropsFrees)
{
    MemoryManager mgr;
    ThreadMem &tm = mgr.registerThread();

    // A journaled allocation rolled back by onAbort must land in the
    // limbo list (retired, not immediately recycled).
    size_t limbo_before = tm.limboSize();
    void *p = tm.txAlloc(64);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xab, 64);
    tm.onAbort();
    EXPECT_GT(tm.limboSize(), limbo_before);

    // A journaled free rolled back by onAbort is dropped: the block
    // stays live and fully usable afterwards.
    void *q = tm.rawAlloc(64);
    ASSERT_NE(q, nullptr);
    std::memset(q, 0x5a, 64);
    tm.txFree(q, 64);
    tm.onAbort();
    for (size_t i = 0; i < 64; ++i)
        EXPECT_EQ(static_cast<unsigned char *>(q)[i], 0x5a);
    tm.rawFree(q, 64);
}

TEST(ThreadMemLifecycleTest, CommitKeepsAllocationsAndRetiresFrees)
{
    MemoryManager mgr;
    ThreadMem &tm = mgr.registerThread();

    void *p = tm.txAlloc(64);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xcd, 64);
    size_t limbo_before = tm.limboSize();
    tm.onCommit();
    // The committed allocation is permanent: not retired, still usable.
    EXPECT_EQ(tm.limboSize(), limbo_before);
    for (size_t i = 0; i < 64; ++i)
        EXPECT_EQ(static_cast<unsigned char *>(p)[i], 0xcd);

    tm.txFree(p, 64);
    tm.onCommit();
    // The committed free went through the epoch limbo, not the pool
    // free list directly.
    EXPECT_GT(tm.limboSize(), limbo_before);
}

#ifndef RHTM_SANITIZE_BUILD
TEST(ThreadMemLifecycleTest, DestructorClearsAndRetiresLiveJournal)
{
    // Simulates an owner that unwound without commit or abort: the
    // destructor must apply abort semantics (allocations retired,
    // pending frees dropped) rather than leak or double-free. A leak
    // or double-free here is what the sanitizer legs of the chaos
    // matrix would flag; in-process the contract is simply that
    // teardown with a live journal is safe.
    auto mgr = std::make_unique<MemoryManager>();
    ThreadMem &tm = mgr->registerThread();
    void *p = tm.txAlloc(128);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0x11, 128);
    void *q = tm.rawAlloc(32);
    ASSERT_NE(q, nullptr);
    tm.txFree(q, 32);
    mgr.reset(); // Live journal: 1 alloc, 1 free. Must not blow up.
}
#endif

} // namespace
} // namespace rhtm
