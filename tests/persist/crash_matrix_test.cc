/**
 * @file
 * Acceptance matrix: every AlgoKind x every crash site x several seeds
 * must recover to a durably-linearizable state -- each captured
 * snapshot AND the final durable image check out against the seal-order
 * history (docs/PERSISTENCE.md "Durable linearizability").
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/api/runtime.h"
#include "src/check/recovery.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace rhtm
{
namespace
{

constexpr FaultSite kSites[] = {
    FaultSite::kCrashPreLogSeal,
    FaultSite::kCrashPostSealPreWriteback,
    FaultSite::kCrashMidWriteback,
    FaultSite::kCrashPostMarker,
};

constexpr uint64_t kSeeds[] = {1, 29, 7177};

void
runMatrixCell(AlgoKind kind, FaultSite site, uint64_t seed, bool torn,
              bool reordered)
{
    const char *algo = algoKindName(kind);
    const char *sname = faultSiteName(site);

    RuntimeConfig cfg;
    cfg.rngSeed = seed;
    cfg.persist.enabled = true;
    cfg.persist.seed = seed;
    cfg.persist.tornWrites = torn;
    cfg.persist.reorderedFlushes = reordered;
    cfg.persist.crashes.at(site, 2);
    cfg.persist.crashes.at(site, 11);
    cfg.persist.crashes.at(site, 41);
    TmRuntime rt(kind, cfg);

    std::vector<uint64_t> arr(64, 0);
    rt.nvm()->registerRegion(arr.data(), arr.size());

    constexpr unsigned kThreads = 2;
    constexpr unsigned kOps = 40;
    test::runThreads(rt, kThreads, [&](unsigned t, ThreadCtx &ctx) {
        Rng rng(seed * 1000003 + t * 7919 + 1);
        for (unsigned op = 0; op < kOps; ++op) {
            rt.run(ctx, [&](Txn &tx) {
                size_t slot = rng.nextBounded(arr.size() - 3);
                uint64_t tag =
                    (uint64_t(t + 1) << 40) | ((op + 1) << 8);
                for (size_t i = 0; i < 3; ++i) {
                    tx.load(&arr[slot + i]);
                    tx.store(&arr[slot + i], tag + i);
                }
            });
        }
    });

    NvmSim *nvm = rt.nvm();
    EXPECT_GE(nvm->crashesCaptured(), 1u)
        << algo << "/" << sname << ": schedule never fired";
    for (const CrashSnapshot &snap : nvm->snapshots()) {
        RecoveryCheckResult res = recoverAndCheck(snap);
        EXPECT_EQ(res.verdict, RecoveryVerdict::kOk)
            << algo << "/" << sname << " seed=" << seed
            << " hit=" << snap.siteHit << ": " << res.detail;
    }

    // The final image (no crash pending, all commits drained) must
    // recover to the complete history.
    NvmImage final_image = nvm->durableImage();
    recoverImage(final_image);
    std::vector<DurableTxnRecord> hist = nvm->historyCopy();
    RecoveryCheckResult res = checkRecoveryConsistency(
        nvm->initialData(), hist, nvm->durableImage(),
        final_image.data);
    EXPECT_EQ(res.verdict, RecoveryVerdict::kOk)
        << algo << "/" << sname << " seed=" << seed << ": "
        << res.detail;
    EXPECT_EQ(res.prefixLength, hist.size())
        << algo << "/" << sname
        << ": quiescent recovery must lose nothing";
    EXPECT_EQ(hist.size(), uint64_t(kThreads) * kOps)
        << algo << "/" << sname
        << ": every committed txn must have sealed a record";
}

TEST(CrashMatrixTest, EveryAlgoEverySiteEverySeedRecoversConsistently)
{
    for (AlgoKind kind : allAlgoKinds())
        for (FaultSite site : kSites)
            for (uint64_t seed : kSeeds)
                runMatrixCell(kind, site, seed, false, false);
}

TEST(CrashMatrixTest, TornAndReorderedFlushesStillRecoverConsistently)
{
    // The adversarial capture modes only change which unfenced pwbs
    // survive; the fencing discipline must make every outcome a valid
    // prefix regardless.
    for (AlgoKind kind : allAlgoKinds())
        for (FaultSite site : kSites)
            runMatrixCell(kind, site, 97, true, true);
}

} // namespace
} // namespace rhtm
