/**
 * @file
 * NvmSim unit tests driving the durable-commit protocol steps directly:
 * pwb/pfence ordering, log-record encoding, seal checksums, crash
 * capture of unfenced write-backs, and log replay
 * (docs/PERSISTENCE.md "Log format" and "Recovery algorithm").
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/persist/nvm_sim.h"

namespace rhtm
{
namespace
{

PersistConfig
baseConfig()
{
    PersistConfig cfg;
    cfg.enabled = true;
    cfg.seed = 7;
    return cfg;
}

TEST(NvmSimTest, RegisterRegionFormatsDurableDataFromHeapContents)
{
    std::vector<uint64_t> heap = {11, 22, 33, 44};
    NvmSim nvm(baseConfig());
    nvm.registerRegion(heap.data(), heap.size());

    EXPECT_EQ(nvm.dataWords(), 4u);
    EXPECT_EQ(nvm.durableImage().data, heap);
    EXPECT_EQ(nvm.initialData(), heap);

    uint64_t off = 99;
    ASSERT_TRUE(nvm.mapOffset(&heap[2], &off));
    EXPECT_EQ(off, 2u);
    uint64_t unmapped = 5;
    EXPECT_FALSE(nvm.mapOffset(&unmapped, &off));
}

TEST(NvmSimTest, SecondRegionMapsAtStackedOffsets)
{
    std::vector<uint64_t> a = {1, 2};
    std::vector<uint64_t> b = {3, 4, 5};
    NvmSim nvm(baseConfig());
    nvm.registerRegion(a.data(), a.size());
    nvm.registerRegion(b.data(), b.size());

    uint64_t off = 0;
    ASSERT_TRUE(nvm.mapOffset(&b[1], &off));
    EXPECT_EQ(off, 3u) << "second region starts after the first";
    EXPECT_EQ(nvm.dataWords(), 5u);
}

TEST(NvmSimTest, AppendFencesPayloadButNotSeal)
{
    std::vector<uint64_t> heap = {0, 0};
    NvmSim nvm(baseConfig());
    nvm.registerRegion(heap.data(), heap.size());

    std::vector<DurableWrite> writes = {{0, 100}, {1, 200}};
    uint64_t pos = nvm.appendRecord(0, 0x123, writes);

    NvmImage img = nvm.durableImage();
    ASSERT_GE(img.log.size(), pos + 6);
    EXPECT_TRUE(nvmHeaderValid(img.log[pos]))
        << "header must be durable when appendRecord returns";
    EXPECT_EQ(nvmHeaderEntries(img.log[pos]), 2u);
    EXPECT_EQ(img.log[pos + 1], 0u); // offset 0
    EXPECT_EQ(img.log[pos + 2], 100u);
    EXPECT_EQ(img.log[pos + 3], 1u);
    EXPECT_EQ(img.log[pos + 4], 200u);
    EXPECT_EQ(img.log[pos + 5], 0u)
        << "the seal slot must still be empty (not yet sealed)";
    EXPECT_TRUE(nvm.historyCopy().empty())
        << "an unsealed record is not history";
}

TEST(NvmSimTest, SealMakesTheRecordDurableHistoryInSealOrder)
{
    std::vector<uint64_t> heap = {0};
    NvmSim nvm(baseConfig());
    nvm.registerRegion(heap.data(), heap.size());

    std::vector<DurableWrite> writes = {{0, 7}};
    uint64_t pos = nvm.appendRecord(0, 0x42, writes);
    uint64_t idx = nvm.sealRecord(0, 0x42, pos, writes);

    EXPECT_EQ(idx, 0u);
    EXPECT_EQ(nvm.recordsSealed(), 1u);
    NvmImage img = nvm.durableImage();
    uint64_t checksum = nvmChecksum(&img.log[pos], 3);
    EXPECT_EQ(img.log[pos + 3], kNvmSealBase ^ checksum)
        << "seal word is the magic xor the record checksum";

    std::vector<DurableTxnRecord> hist = nvm.historyCopy();
    ASSERT_EQ(hist.size(), 1u);
    EXPECT_EQ(hist[0].txnId, 0x42u);
    EXPECT_EQ(hist[0].recordIndex, 0u);
    EXPECT_EQ(hist[0].logPos, pos);
    ASSERT_EQ(hist[0].writes.size(), 1u);
    EXPECT_EQ(hist[0].writes[0].value, 7u);
}

TEST(NvmSimTest, DataWritesNeedAFenceToReachDurableMedia)
{
    std::vector<uint64_t> heap = {0, 0};
    NvmSim nvm(baseConfig());
    nvm.registerRegion(heap.data(), heap.size());

    nvm.dataWrite(0, 0, 55);
    nvm.dataWrite(0, 1, 66);
    EXPECT_EQ(nvm.durableImage().data[0], 0u)
        << "a queued pwb is not durable until a pfence drains it";
    EXPECT_EQ(nvm.pwbCount(), 2u);

    nvm.fence(0);
    NvmImage img = nvm.durableImage();
    EXPECT_EQ(img.data[0], 55u);
    EXPECT_EQ(img.data[1], 66u);
    EXPECT_GE(nvm.pfenceCount(), 1u);
}

TEST(NvmSimTest, FenceDrainsOnlyTheCallingThreadsQueue)
{
    std::vector<uint64_t> heap = {0, 0};
    NvmSim nvm(baseConfig());
    nvm.registerRegion(heap.data(), heap.size());

    nvm.dataWrite(0, 0, 1);
    nvm.dataWrite(1, 1, 2);
    nvm.fence(0);

    NvmImage img = nvm.durableImage();
    EXPECT_EQ(img.data[0], 1u);
    EXPECT_EQ(img.data[1], 0u)
        << "pfence is per-thread: tid 1's pwb must still be pending";
}

TEST(NvmSimTest, WriteMarkLandsInTheReservedSlot)
{
    std::vector<uint64_t> heap = {0};
    NvmSim nvm(baseConfig());
    nvm.registerRegion(heap.data(), heap.size());

    std::vector<DurableWrite> writes = {{0, 1}};
    uint64_t pos = nvm.appendRecord(2, 0x99, writes);
    uint64_t idx = nvm.sealRecord(2, 0x99, pos, writes);
    nvm.writeMark(2, idx, 0x99);

    NvmImage img = nvm.durableImage();
    ASSERT_GT(img.marks.size(), idx);
    EXPECT_TRUE(nvmMarkValid(img.marks[idx]));
    EXPECT_EQ(img.marks[idx] & 0xFFFFFFFFFFFFull, 0x99u);
    EXPECT_EQ(nvm.marksWritten(), 1u);
}

TEST(NvmSimTest, RecoveryReplaysSealedAndSkipsUnsealedRecords)
{
    std::vector<uint64_t> heap = {0, 0, 0};
    NvmSim nvm(baseConfig());
    nvm.registerRegion(heap.data(), heap.size());

    // Record A: sealed. Record B: appended only (crashed pre-seal).
    // Record C: sealed after B -- recovery must skip B's known extent
    // and still replay C (docs/PERSISTENCE.md "Recovery algorithm").
    std::vector<DurableWrite> wa = {{0, 10}};
    std::vector<DurableWrite> wb = {{1, 20}};
    std::vector<DurableWrite> wc = {{2, 30}};
    uint64_t pa = nvm.appendRecord(0, 1, wa);
    nvm.sealRecord(0, 1, pa, wa);
    nvm.appendRecord(0, 2, wb);
    uint64_t pc = nvm.appendRecord(0, 3, wc);
    nvm.sealRecord(0, 3, pc, wc);

    NvmImage img = nvm.durableImage();
    RecoveryReport rep = recoverImage(img);
    EXPECT_EQ(rep.recordsReplayed, 2u);
    EXPECT_EQ(rep.recordsDiscarded, 1u);
    EXPECT_EQ(rep.entriesReplayed, 2u);
    EXPECT_EQ(img.data[0], 10u);
    EXPECT_EQ(img.data[1], 0u) << "unsealed effect must not survive";
    EXPECT_EQ(img.data[2], 30u)
        << "recovery must continue past a skipped record";
}

TEST(NvmSimTest, BugReplayUnsealedReintroducesTheLostUpdateBug)
{
    std::vector<uint64_t> heap = {0};
    NvmSim nvm(baseConfig());
    nvm.registerRegion(heap.data(), heap.size());

    std::vector<DurableWrite> w = {{0, 77}};
    nvm.appendRecord(0, 5, w);

    NvmImage good = nvm.durableImage();
    RecoveryReport rep = recoverImage(good);
    EXPECT_EQ(good.data[0], 0u);
    EXPECT_EQ(rep.recordsDiscarded, 1u);

    NvmImage bad = nvm.durableImage();
    RecoveryOptions opts;
    opts.bugReplayUnsealed = true;
    rep = recoverImage(bad, opts);
    EXPECT_EQ(bad.data[0], 77u)
        << "the deliberate bug replays the unsealed tail";
    EXPECT_EQ(rep.recordsDiscarded, 0u);
}

TEST(NvmSimTest, CrashCaptureDropsUnfencedPwbsByDefault)
{
    PersistConfig cfg = baseConfig();
    cfg.crashes.at(FaultSite::kCrashMidWriteback, 1);
    std::vector<uint64_t> heap = {0, 0};
    NvmSim nvm(cfg);
    nvm.registerRegion(heap.data(), heap.size());

    nvm.dataWrite(0, 0, 123);
    ASSERT_TRUE(nvm.crashPoint(FaultSite::kCrashMidWriteback, 0));
    ASSERT_EQ(nvm.snapshots().size(), 1u);
    const CrashSnapshot &snap = nvm.snapshots()[0];
    EXPECT_EQ(snap.site, FaultSite::kCrashMidWriteback);
    EXPECT_EQ(snap.tid, 0u);
    EXPECT_EQ(snap.image.data[0], 0u)
        << "power loss loses queued-but-unfenced write-backs";

    // The run continues: the pending pwb still drains afterwards.
    nvm.fence(0);
    EXPECT_EQ(nvm.durableImage().data[0], 123u);
    EXPECT_EQ(nvm.crashesCaptured(), 1u);
}

TEST(NvmSimTest, ResetForTestRewindsToFormattedState)
{
    PersistConfig cfg = baseConfig();
    cfg.crashes.at(FaultSite::kCrashPostMarker, 1);
    std::vector<uint64_t> heap = {9, 9};
    NvmSim nvm(cfg);
    nvm.registerRegion(heap.data(), heap.size());

    std::vector<DurableWrite> w = {{0, 1}};
    uint64_t pos = nvm.appendRecord(0, 1, w);
    uint64_t idx = nvm.sealRecord(0, 1, pos, w);
    nvm.dataWrite(0, 0, 1);
    nvm.fence(0);
    nvm.writeMark(0, idx, 1);
    EXPECT_TRUE(nvm.crashPoint(FaultSite::kCrashPostMarker, 0));

    nvm.resetForTest();
    EXPECT_EQ(nvm.durableImage().data, (std::vector<uint64_t>{9, 9}));
    EXPECT_TRUE(nvm.historyCopy().empty());
    EXPECT_TRUE(nvm.snapshots().empty());
    EXPECT_EQ(nvm.recordsSealed(), 0u);
    EXPECT_EQ(nvm.marksWritten(), 0u);
    EXPECT_TRUE(nvm.crashPoint(FaultSite::kCrashPostMarker, 0))
        << "the crash schedule must be re-armed";
}

TEST(NvmSimTest, ChecksumDetectsSingleWordCorruption)
{
    uint64_t words[3] = {nvmRecordHeader(1, 1), 0, 42};
    uint64_t sum = nvmChecksum(words, 3);
    words[2] ^= 1;
    EXPECT_NE(nvmChecksum(words, 3), sum);
}

} // namespace
} // namespace rhtm
