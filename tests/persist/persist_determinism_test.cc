/**
 * @file
 * Crash-seed determinism: two single-threaded runs with the same seed
 * and the same crash schedule must leave byte-identical durable images
 * and identical crash snapshots -- the --crash-seed reproducibility
 * contract (docs/PERSISTENCE.md "Determinism").
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/api/runtime.h"
#include "src/check/recovery.h"
#include "src/util/rng.h"

namespace rhtm
{
namespace
{

struct RunResult
{
    NvmImage finalImage;
    std::vector<NvmImage> snapshotImages;
    uint64_t sealed;
    uint64_t pwbs;
};

RunResult
runOnce(AlgoKind kind, uint64_t seed, bool torn, bool reordered)
{
    RuntimeConfig cfg;
    cfg.rngSeed = seed;
    cfg.persist.enabled = true;
    cfg.persist.seed = seed;
    cfg.persist.tornWrites = torn;
    cfg.persist.reorderedFlushes = reordered;
    cfg.persist.crashes.at(FaultSite::kCrashMidWriteback, 3);
    cfg.persist.crashes.at(FaultSite::kCrashPreLogSeal, 9);
    cfg.persist.crashes.at(FaultSite::kCrashPostMarker, 17);
    TmRuntime rt(kind, cfg);

    std::vector<uint64_t> arr(48, 0);
    rt.nvm()->registerRegion(arr.data(), arr.size());
    ThreadCtx &ctx = rt.registerThread();

    Rng rng(seed * 1000003 + 1);
    for (unsigned op = 0; op < 60; ++op) {
        rt.run(ctx, [&](Txn &tx) {
            size_t slot = rng.nextBounded(arr.size() - 2);
            uint64_t v = tx.load(&arr[slot]);
            tx.store(&arr[slot], v + op + 1);
            tx.store(&arr[slot + 1], (uint64_t(op) << 16) | slot);
        });
    }

    RunResult res;
    res.finalImage = rt.nvm()->durableImage();
    for (const CrashSnapshot &snap : rt.nvm()->snapshots())
        res.snapshotImages.push_back(snap.image);
    res.sealed = rt.nvm()->recordsSealed();
    res.pwbs = rt.nvm()->pwbCount();
    return res;
}

TEST(PersistDeterminismTest, SameSeedSameAlgoByteIdenticalImages)
{
    for (AlgoKind kind : allAlgoKinds()) {
        const char *algo = algoKindName(kind);
        RunResult a = runOnce(kind, 1234, false, false);
        RunResult b = runOnce(kind, 1234, false, false);

        EXPECT_TRUE(a.finalImage == b.finalImage)
            << algo << ": durable images diverged across reruns";
        ASSERT_EQ(a.snapshotImages.size(), b.snapshotImages.size())
            << algo;
        for (size_t i = 0; i < a.snapshotImages.size(); ++i)
            EXPECT_TRUE(a.snapshotImages[i] == b.snapshotImages[i])
                << algo << ": crash snapshot " << i << " diverged";
        EXPECT_EQ(a.sealed, b.sealed) << algo;
        EXPECT_EQ(a.pwbs, b.pwbs) << algo;
    }
}

TEST(PersistDeterminismTest, AdversarialCaptureIsSeedDeterministicToo)
{
    // Torn and reordered-flush decisions come from the seeded capture
    // RNG, so they replay byte-for-byte as well.
    RunResult a = runOnce(AlgoKind::kNOrecLazy, 5150, true, true);
    RunResult b = runOnce(AlgoKind::kNOrecLazy, 5150, true, true);
    EXPECT_TRUE(a.finalImage == b.finalImage);
    ASSERT_EQ(a.snapshotImages.size(), b.snapshotImages.size());
    for (size_t i = 0; i < a.snapshotImages.size(); ++i)
        EXPECT_TRUE(a.snapshotImages[i] == b.snapshotImages[i])
            << "adversarial snapshot " << i << " diverged";
}

TEST(PersistDeterminismTest, DifferentSeedsDivergeSomewhere)
{
    // Sanity check that the knob is actually wired: a different seed
    // changes the access pattern, so the images should differ.
    RunResult a = runOnce(AlgoKind::kNOrec, 1, false, false);
    RunResult b = runOnce(AlgoKind::kNOrec, 2, false, false);
    EXPECT_FALSE(a.finalImage == b.finalImage);
}

} // namespace
} // namespace rhtm
