/**
 * @file
 * Recovery-consistency checker tests (src/check/recovery.h): each
 * verdict on hand-built ground truth, plus the end-to-end reverted-fix
 * regression -- recovery that replays an unsealed record
 * (RecoveryOptions::bugReplayUnsealed) must be flagged, never pass.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/api/runtime.h"
#include "src/check/recovery.h"

namespace rhtm
{
namespace
{

/** History of single-word records writing value k+1 to offset k. */
std::vector<DurableTxnRecord>
ladderHistory(size_t n)
{
    std::vector<DurableTxnRecord> hist(n);
    for (size_t k = 0; k < n; ++k) {
        hist[k].txnId = k + 1;
        hist[k].tid = 0;
        hist[k].recordIndex = k;
        hist[k].logPos = k * 3;
        hist[k].writes = {{k, k + 1}};
    }
    return hist;
}

/** Marks image with valid markers for the first @p marked records. */
NvmImage
marksFor(const std::vector<DurableTxnRecord> &hist, size_t marked)
{
    NvmImage img;
    img.marks.assign(hist.size(), 0);
    for (size_t i = 0; i < marked; ++i)
        img.marks[i] = nvmMarkWord(hist[i].txnId);
    return img;
}

TEST(RecoveryCheckTest, ExactPrefixWithAllMarksInsideIsOk)
{
    std::vector<uint64_t> init = {0, 0, 0};
    auto hist = ladderHistory(3);
    std::vector<uint64_t> recovered = {1, 2, 0}; // Prefix of 2.

    RecoveryCheckResult res = checkRecoveryConsistency(
        init, hist, marksFor(hist, 2), recovered);
    EXPECT_EQ(res.verdict, RecoveryVerdict::kOk) << res.detail;
    EXPECT_EQ(res.prefixLength, 2u);
}

TEST(RecoveryCheckTest, EmptyPrefixIsOkWhenNothingWasMarked)
{
    std::vector<uint64_t> init = {5, 6};
    auto hist = ladderHistory(2);
    RecoveryCheckResult res = checkRecoveryConsistency(
        init, hist, marksFor(hist, 0), init);
    EXPECT_EQ(res.verdict, RecoveryVerdict::kOk) << res.detail;
    EXPECT_EQ(res.prefixLength, 0u);
}

TEST(RecoveryCheckTest, InventedValueIsNotPrefix)
{
    std::vector<uint64_t> init = {0, 0};
    auto hist = ladderHistory(2);
    std::vector<uint64_t> recovered = {1, 99}; // 99 never written.

    RecoveryCheckResult res = checkRecoveryConsistency(
        init, hist, marksFor(hist, 0), recovered);
    EXPECT_EQ(res.verdict, RecoveryVerdict::kNotPrefix);
    EXPECT_FALSE(res.detail.empty());
}

TEST(RecoveryCheckTest, SkippedMiddleRecordIsNotPrefix)
{
    std::vector<uint64_t> init = {0, 0, 0};
    auto hist = ladderHistory(3);
    std::vector<uint64_t> recovered = {1, 0, 3}; // Record 1 missing.

    RecoveryCheckResult res = checkRecoveryConsistency(
        init, hist, marksFor(hist, 0), recovered);
    EXPECT_EQ(res.verdict, RecoveryVerdict::kNotPrefix)
        << "a gap in the history is not a prefix";
}

TEST(RecoveryCheckTest, MarkedTransactionPastThePrefixIsLost)
{
    std::vector<uint64_t> init = {0, 0, 0};
    auto hist = ladderHistory(3);
    std::vector<uint64_t> recovered = {1, 0, 0}; // Prefix of 1...

    RecoveryCheckResult res = checkRecoveryConsistency(
        init, hist, marksFor(hist, 2), recovered); // ...but 2 marked.
    EXPECT_EQ(res.verdict, RecoveryVerdict::kLostMarked);
}

TEST(RecoveryCheckTest, MalformedInputsAreRejected)
{
    std::vector<uint64_t> init = {0, 0};
    auto hist = ladderHistory(2);

    // Size mismatch.
    std::vector<uint64_t> shortData = {0};
    EXPECT_EQ(checkRecoveryConsistency(init, hist, marksFor(hist, 0),
                                       shortData)
                  .verdict,
              RecoveryVerdict::kMalformed);

    // Garbage marker word.
    NvmImage img = marksFor(hist, 0);
    img.marks[0] = 0xDEADBEEF;
    EXPECT_EQ(checkRecoveryConsistency(init, hist, img, init).verdict,
              RecoveryVerdict::kMalformed);

    // Marker beyond the sealed history.
    img = marksFor(hist, 0);
    img.marks.push_back(nvmMarkWord(9));
    EXPECT_EQ(checkRecoveryConsistency(init, hist, img, init).verdict,
              RecoveryVerdict::kMalformed);

    // History writing outside the region.
    auto bad = ladderHistory(1);
    bad[0].writes[0].offset = 17;
    EXPECT_EQ(checkRecoveryConsistency(init, bad, marksFor(bad, 0),
                                       init)
                  .verdict,
              RecoveryVerdict::kMalformed);
}

TEST(RecoveryCheckTest, LastWriteWinsOrderMatters)
{
    // Two records write the same word; only the later value is a valid
    // 2-prefix state, so replaying them out of order is caught.
    std::vector<uint64_t> init = {0};
    std::vector<DurableTxnRecord> hist(2);
    hist[0].txnId = 1;
    hist[0].recordIndex = 0;
    hist[0].writes = {{0, 10}};
    hist[1].txnId = 2;
    hist[1].recordIndex = 1;
    hist[1].writes = {{0, 20}};

    std::vector<uint64_t> inOrder = {20};
    EXPECT_EQ(checkRecoveryConsistency(init, hist, marksFor(hist, 2),
                                       inOrder)
                  .verdict,
              RecoveryVerdict::kOk);

    std::vector<uint64_t> swapped = {10}; // Prefix of 1, but 2 marked.
    EXPECT_EQ(checkRecoveryConsistency(init, hist, marksFor(hist, 2),
                                       swapped)
                  .verdict,
              RecoveryVerdict::kLostMarked);
}

/**
 * End-to-end reverted-fix regression: crash a real run before the seal
 * fences, recover with the deliberate replay-unsealed bug, and require
 * the checker to flag the image. Guards both directions -- the bug
 * must produce a bad image here, and the checker must catch it.
 */
TEST(RecoveryCheckTest, ReplayUnsealedBugIsCaughtEndToEnd)
{
    RuntimeConfig cfg;
    cfg.persist.enabled = true;
    cfg.persist.seed = 3;
    cfg.persist.crashes.at(FaultSite::kCrashPreLogSeal, 2);
    TmRuntime rt(AlgoKind::kNOrec, cfg);
    std::vector<uint64_t> arr(16, 0);
    rt.nvm()->registerRegion(arr.data(), arr.size());
    ThreadCtx &ctx = rt.registerThread();

    for (unsigned op = 0; op < 8; ++op) {
        rt.run(ctx, [&](Txn &tx) {
            tx.store(&arr[op % arr.size()], 1000 + op);
        });
    }
    ASSERT_EQ(rt.nvm()->snapshots().size(), 1u);
    const CrashSnapshot &snap = rt.nvm()->snapshots()[0];

    // Correct recovery passes...
    RecoveryCheckResult good = recoverAndCheck(snap);
    EXPECT_EQ(good.verdict, RecoveryVerdict::kOk) << good.detail;

    // ...the reverted fix does not: the crash sits between the payload
    // fence and the seal, so exactly one unsealed record is in the
    // image, and replaying it yields a non-history state.
    RecoveryOptions bug;
    bug.bugReplayUnsealed = true;
    RecoveryCheckResult bad = recoverAndCheck(snap, bug);
    EXPECT_EQ(bad.verdict, RecoveryVerdict::kNotPrefix)
        << "checker must flag the replayed unsealed record";
}

} // namespace
} // namespace rhtm
