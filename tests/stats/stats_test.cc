/**
 * @file
 * Unit tests for the statistics counters and the derived metrics that
 * feed the paper's figure rows.
 */

#include <gtest/gtest.h>

#include "src/stats/stats.h"

namespace rhtm
{
namespace
{

TEST(StatsTest, CountersStartAtZero)
{
    ThreadStats ts;
    for (unsigned i = 0; i < kNumCounters; ++i)
        EXPECT_EQ(ts.counts[i], 0u);
}

TEST(StatsTest, IncAndGet)
{
    ThreadStats ts;
    ts.inc(Counter::kOperations);
    ts.inc(Counter::kOperations, 4);
    EXPECT_EQ(ts.get(Counter::kOperations), 5u);
    ts.reset();
    EXPECT_EQ(ts.get(Counter::kOperations), 0u);
}

TEST(StatsTest, AccumulateMergesThreads)
{
    ThreadStats a, b;
    a.inc(Counter::kCommitsFastPath, 10);
    b.inc(Counter::kCommitsFastPath, 5);
    b.inc(Counter::kFallbacks, 2);
    StatsSummary s;
    s.accumulate(a);
    s.accumulate(b);
    EXPECT_EQ(s.get(Counter::kCommitsFastPath), 15u);
    EXPECT_EQ(s.get(Counter::kFallbacks), 2u);
}

TEST(StatsTest, DerivedMetricsMatchFigureDefinitions)
{
    ThreadStats ts;
    ts.inc(Counter::kOperations, 100);
    ts.inc(Counter::kHtmConflictAborts, 25);
    ts.inc(Counter::kHtmCapacityAborts, 10);
    ts.inc(Counter::kFallbacks, 20);
    ts.inc(Counter::kCommitsMixedPath, 8);
    ts.inc(Counter::kCommitsSoftwarePath, 10);
    ts.inc(Counter::kCommitsSerialPath, 2);
    ts.inc(Counter::kSlowPathRestarts, 40);
    ts.inc(Counter::kPrefixAttempts, 10);
    ts.inc(Counter::kPrefixSuccesses, 9);
    ts.inc(Counter::kPostfixAttempts, 8);
    ts.inc(Counter::kPostfixSuccesses, 6);

    StatsSummary s;
    s.accumulate(ts);
    EXPECT_DOUBLE_EQ(s.conflictAbortsPerOp(), 0.25);   // Row 2.
    EXPECT_DOUBLE_EQ(s.capacityAbortsPerOp(), 0.10);   // Row 2.
    EXPECT_DOUBLE_EQ(s.restartsPerSlowPath(), 2.0);    // Row 3.
    EXPECT_DOUBLE_EQ(s.slowPathRatio(), 0.20);         // Row 4.
    EXPECT_DOUBLE_EQ(s.prefixSuccessRatio(), 0.9);     // Row 5.
    EXPECT_DOUBLE_EQ(s.postfixSuccessRatio(), 0.75);   // Row 5.
}

TEST(StatsTest, RatiosAreZeroNotNanOnEmptyDenominators)
{
    StatsSummary s;
    EXPECT_EQ(s.conflictAbortsPerOp(), 0.0);
    EXPECT_EQ(s.capacityAbortsPerOp(), 0.0);
    EXPECT_EQ(s.restartsPerSlowPath(), 0.0);
    EXPECT_EQ(s.slowPathRatio(), 0.0);
    EXPECT_EQ(s.prefixSuccessRatio(), 0.0);
    EXPECT_EQ(s.postfixSuccessRatio(), 0.0);
}

TEST(StatsTest, ToStringMentionsEveryMetric)
{
    ThreadStats ts;
    ts.inc(Counter::kOperations, 7);
    StatsSummary s;
    s.accumulate(ts);
    std::string dump = s.toString();
    EXPECT_NE(dump.find("operations"), std::string::npos);
    EXPECT_NE(dump.find("fast-path commits"), std::string::npos);
    EXPECT_NE(dump.find("slow-path ratio"), std::string::npos);
    EXPECT_NE(dump.find("prefix success"), std::string::npos);
}

} // namespace
} // namespace rhtm
