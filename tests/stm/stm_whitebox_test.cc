/**
 * @file
 * White-box tests of the STM baselines, driving sessions directly to
 * pin down the protocol differences the paper leans on: eager NOrec
 * restarts on any commit, lazy NOrec value-validates, TL2 detects
 * conflicts per location.
 */

#include <gtest/gtest.h>

#include "src/api/runtime.h"

namespace rhtm
{
namespace
{

/** Drive a complete single-location write transaction on @p s. */
void
writeTxn(TxSession &s, uint64_t *addr, uint64_t value)
{
    s.begin(TxnHint::kNone);
    s.write(addr, value);
    s.commit();
    s.onComplete();
}

struct StmFixture : public ::testing::Test
{
    alignas(64) uint64_t x = 1;
    alignas(64) uint64_t y = 2;
    alignas(64) uint64_t z = 3;
};

/** Classic eager NOrec: timestamp extension (front 3) disabled. */
RuntimeConfig
classicEagerConfig()
{
    RuntimeConfig cfg;
    cfg.commitPath.tsExtension = false;
    return cfg;
}

TEST_F(StmFixture, EagerNOrecReaderRestartsOnAnyCommit)
{
    TmRuntime rt(AlgoKind::kNOrec, classicEagerConfig());
    TxSession &a = rt.registerThread().session();
    TxSession &b = rt.registerThread().session();

    a.begin(TxnHint::kNone);
    EXPECT_EQ(a.read(&x), 1u);

    writeTxn(b, &z, 30); // Unrelated location...

    // ...but eager NOrec has no read log: any commit forces a restart
    // (paper Section 3.1).
    EXPECT_THROW(a.read(&y), TxRestart);
    a.onRestart();
}

TEST_F(StmFixture, EagerNOrecReaderExtendsAcrossUnrelatedCommit)
{
    // Front 3 (the default): the eager session keeps a value log and
    // extends its snapshot across a disjoint commit instead of
    // restarting.
    TmRuntime rt(AlgoKind::kNOrec);
    TxSession &a = rt.registerThread().session();
    TxSession &b = rt.registerThread().session();

    a.begin(TxnHint::kNone);
    EXPECT_EQ(a.read(&x), 1u);

    writeTxn(b, &z, 30);

    EXPECT_EQ(a.read(&y), 2u) << "extension should absorb the commit";
    a.commit();
    a.onComplete();
}

TEST_F(StmFixture, EagerNOrecReaderStillRestartsOnOverwrite)
{
    TmRuntime rt(AlgoKind::kNOrec);
    TxSession &a = rt.registerThread().session();
    TxSession &b = rt.registerThread().session();

    a.begin(TxnHint::kNone);
    EXPECT_EQ(a.read(&x), 1u);

    writeTxn(b, &x, 100); // Overwrites a logged location.

    EXPECT_THROW(a.read(&y), TxRestart);
    a.onRestart();
}

TEST_F(StmFixture, EagerNOrecFirstWriteExtendsAcrossUnrelatedCommit)
{
    // The extension also applies at the first-write clock acquire: a
    // foreign disjoint commit between snapshot and first write no
    // longer forces a restart.
    TmRuntime rt(AlgoKind::kNOrec);
    TxSession &a = rt.registerThread().session();
    TxSession &b = rt.registerThread().session();

    a.begin(TxnHint::kNone);
    EXPECT_EQ(a.read(&x), 1u);

    writeTxn(b, &z, 30);

    a.write(&y, 20); // Classic eager NOrec would restart here.
    a.commit();
    a.onComplete();
    EXPECT_EQ(y, 20u);
}

TEST_F(StmFixture, LazyNOrecReaderSurvivesUnrelatedCommit)
{
    TmRuntime rt(AlgoKind::kNOrecLazy);
    TxSession &a = rt.registerThread().session();
    TxSession &b = rt.registerThread().session();

    a.begin(TxnHint::kNone);
    EXPECT_EQ(a.read(&x), 1u);

    writeTxn(b, &z, 30);

    // Value-based validation: x is unchanged, the snapshot extends.
    EXPECT_EQ(a.read(&y), 2u);
    a.commit();
    a.onComplete();
}

TEST_F(StmFixture, LazyNOrecReaderRestartsOnOverwrite)
{
    TmRuntime rt(AlgoKind::kNOrecLazy);
    TxSession &a = rt.registerThread().session();
    TxSession &b = rt.registerThread().session();

    a.begin(TxnHint::kNone);
    EXPECT_EQ(a.read(&x), 1u);

    writeTxn(b, &x, 100);

    EXPECT_THROW(a.read(&y), TxRestart);
    a.onRestart();
}

TEST_F(StmFixture, LazyNOrecWritesDeferredToCommit)
{
    TmRuntime rt(AlgoKind::kNOrecLazy);
    TxSession &a = rt.registerThread().session();

    a.begin(TxnHint::kNone);
    a.write(&x, 50);
    EXPECT_EQ(x, 1u) << "lazy write leaked before commit";
    EXPECT_EQ(a.read(&x), 50u) << "read-own-write through the buffer";
    a.commit();
    a.onComplete();
    EXPECT_EQ(x, 50u);
}

TEST_F(StmFixture, EagerNOrecWritesInPlaceUnderClockLock)
{
    TmRuntime rt(AlgoKind::kNOrec);
    TxSession &a = rt.registerThread().session();

    a.begin(TxnHint::kNone);
    a.write(&x, 50);
    EXPECT_EQ(x, 50u) << "eager write should be in place";
    EXPECT_TRUE(clockIsLocked(rt.globals().clock))
        << "the clock is held from first write to commit";
    a.commit();
    a.onComplete();
    EXPECT_FALSE(clockIsLocked(rt.globals().clock));
}

TEST_F(StmFixture, EagerNOrecWriterBlocksOtherWriter)
{
    // Classic protocol: with extension on, b would *wait* for the
    // locked clock instead of restarting (deadlock single-threaded).
    TmRuntime rt(AlgoKind::kNOrec, classicEagerConfig());
    TxSession &a = rt.registerThread().session();
    TxSession &b = rt.registerThread().session();

    a.begin(TxnHint::kNone);
    b.begin(TxnHint::kNone);
    a.write(&x, 10);
    // b cannot acquire the locked clock.
    EXPECT_THROW(b.write(&y, 20), TxRestart);
    b.onRestart();
    a.commit();
    a.onComplete();
}

TEST_F(StmFixture, Tl2ReaderSurvivesUnrelatedCommit)
{
    TmRuntime rt(AlgoKind::kTl2);
    TxSession &a = rt.registerThread().session();
    TxSession &b = rt.registerThread().session();

    a.begin(TxnHint::kNone);
    EXPECT_EQ(a.read(&x), 1u);

    writeTxn(b, &z, 30);

    // Per-location conflict detection: the commit touched a different
    // orec, so the reader proceeds (TL2's scalability edge).
    EXPECT_EQ(a.read(&y), 2u);
    a.commit();
    a.onComplete();
}

TEST_F(StmFixture, Tl2ReaderRestartsOnOverwrittenLocation)
{
    TmRuntime rt(AlgoKind::kTl2);
    TxSession &a = rt.registerThread().session();
    TxSession &b = rt.registerThread().session();

    a.begin(TxnHint::kNone);
    EXPECT_EQ(a.read(&x), 1u);

    writeTxn(b, &x, 100);

    // Reading x again sees a version newer than our snapshot.
    EXPECT_THROW(a.read(&x), TxRestart);
    a.onRestart();
}

TEST_F(StmFixture, Tl2WriteWriteConflictRestartsSecond)
{
    TmRuntime rt(AlgoKind::kTl2);
    TxSession &a = rt.registerThread().session();
    TxSession &b = rt.registerThread().session();

    a.begin(TxnHint::kNone);
    b.begin(TxnHint::kNone);
    a.write(&x, 10);
    EXPECT_THROW(b.write(&x, 20), TxRestart);
    b.onRestart();
    a.commit();
    a.onComplete();
    EXPECT_EQ(x, 10u);
}

TEST_F(StmFixture, Tl2ConcurrentDisjointWritersBothCommit)
{
    TmRuntime rt(AlgoKind::kTl2);
    TxSession &a = rt.registerThread().session();
    TxSession &b = rt.registerThread().session();

    a.begin(TxnHint::kNone);
    b.begin(TxnHint::kNone);
    a.write(&x, 10);
    b.write(&y, 20); // NOrec would restart here; TL2 does not.
    a.commit();
    a.onComplete();
    b.commit();
    b.onComplete();
    EXPECT_EQ(x, 10u);
    EXPECT_EQ(y, 20u);
}

TEST_F(StmFixture, Tl2UndoRestoresEagerWritesOnRestart)
{
    TmRuntime rt(AlgoKind::kTl2);
    TxSession &a = rt.registerThread().session();
    TxSession &b = rt.registerThread().session();

    a.begin(TxnHint::kNone);
    a.write(&x, 10);
    EXPECT_EQ(x, 10u) << "eager write in place";

    writeTxn(b, &y, 99);

    // Reading y now fails (version beyond snapshot) and the undo log
    // must restore x.
    EXPECT_THROW(a.read(&y), TxRestart);
    a.onRestart();
    EXPECT_EQ(x, 1u) << "undo log failed to roll back";
}

TEST_F(StmFixture, Tl2ReadOwnLockedLine)
{
    TmRuntime rt(AlgoKind::kTl2);
    TxSession &a = rt.registerThread().session();

    a.begin(TxnHint::kNone);
    a.write(&x, 10);
    EXPECT_EQ(a.read(&x), 10u) << "owner reads through its own lock";
    a.commit();
    a.onComplete();
}

} // namespace
} // namespace rhtm
