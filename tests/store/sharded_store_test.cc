/**
 * @file
 * Sharded-store tests across every TM algorithm: point/range
 * semantics, cross-shard RMW atomicity under concurrency, and
 * strict-serializability of recorded operation histories (including
 * cross-shard commits) via the src/check checker.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/check/history.h"
#include "src/store/sharded_store.h"
#include "src/util/barrier.h"
#include "src/util/rng.h"

namespace rhtm
{
namespace
{

constexpr uint64_t kSeedValue = 500;

StoreConfig
configFor(AlgoKind kind, unsigned shards)
{
    StoreConfig cfg;
    cfg.kind = kind;
    cfg.shards = shards;
    cfg.hashBucketsLog2 = 8;
    return cfg;
}

class StoreAlgoTest : public ::testing::TestWithParam<AlgoKind>
{
};

TEST_P(StoreAlgoTest, PutGetRoundTrip)
{
    ShardedStore store(configFor(GetParam(), 4));
    StoreWorker &w = store.registerWorker();
    for (uint64_t key = 0; key < 64; ++key)
        ASSERT_EQ(store.put(w, key, key * 10), TxnOutcome::kCommitted);
    for (uint64_t key = 0; key < 64; ++key) {
        uint64_t v = 0;
        bool found = false;
        ASSERT_EQ(store.get(w, key, v, found), TxnOutcome::kCommitted);
        EXPECT_TRUE(found) << "key " << key;
        EXPECT_EQ(v, key * 10) << "key " << key;
    }
    uint64_t v = 0;
    bool found = true;
    ASSERT_EQ(store.get(w, 9999, v, found), TxnOutcome::kCommitted);
    EXPECT_FALSE(found);
}

TEST_P(StoreAlgoTest, ScanReturnsOrderedShardResidents)
{
    ShardedStore store(configFor(GetParam(), 4));
    StoreWorker &w = store.registerWorker();
    store.seed(w, 256, kSeedValue);

    for (unsigned s = 0; s < store.shardCount(); ++s) {
        std::vector<std::pair<uint64_t, uint64_t>> out;
        ASSERT_EQ(store.scan(w, s, 0, 255, 256, out),
                  TxnOutcome::kCommitted);
        EXPECT_FALSE(out.empty()) << "shard " << s;
        uint64_t prev = 0;
        bool first = true;
        for (const auto &[key, value] : out) {
            if (!first)
                EXPECT_GT(key, prev);
            first = false;
            prev = key;
            EXPECT_EQ(value, kSeedValue);
            // Only this shard's residents may appear.
            EXPECT_EQ(store.shardOf(key), s);
        }
    }
}

TEST_P(StoreAlgoTest, SingleShardRmwAddsDelta)
{
    ShardedStore store(configFor(GetParam(), 4));
    StoreWorker &w = store.registerWorker();
    store.seed(w, 32, kSeedValue);
    // Force all keys onto one shard so the native path runs.
    std::vector<uint64_t> keys{store.keyForShard(2, 0),
                               store.keyForShard(2, 1)};
    for (uint64_t key : keys)
        ASSERT_EQ(store.put(w, key, kSeedValue), TxnOutcome::kCommitted);
    ASSERT_EQ(store.multiRmw(w, keys, 7), TxnOutcome::kCommitted);
    for (uint64_t key : keys) {
        uint64_t v = 0;
        bool found = false;
        ASSERT_EQ(store.get(w, key, v, found), TxnOutcome::kCommitted);
        EXPECT_TRUE(found);
        EXPECT_EQ(v, kSeedValue + 7);
    }
}

TEST_P(StoreAlgoTest, CrossShardRmwSpansDomains)
{
    ShardedStore store(configFor(GetParam(), 4));
    StoreWorker &w = store.registerWorker();
    // One key per shard: guaranteed cross-shard.
    std::vector<uint64_t> keys;
    for (unsigned s = 0; s < store.shardCount(); ++s) {
        keys.push_back(store.keyForShard(s, s));
        ASSERT_EQ(store.put(w, keys.back(), kSeedValue),
                  TxnOutcome::kCommitted);
    }
    ASSERT_EQ(store.multiRmw(w, keys, 3), TxnOutcome::kCommitted);
    for (uint64_t key : keys) {
        uint64_t v = 0;
        bool found = false;
        ASSERT_EQ(store.get(w, key, v, found), TxnOutcome::kCommitted);
        EXPECT_TRUE(found);
        EXPECT_EQ(v, kSeedValue + 3);
    }
    EXPECT_GE(store.stats().get(Counter::kCrossShardCommits), 1u);
}

TEST_P(StoreAlgoTest, ConcurrentCrossShardRmwPreservesSum)
{
    const unsigned kThreads = 3;
    const unsigned kOpsPerThread = 60;
    const uint64_t kKeys = 48;

    ShardedStore store(configFor(GetParam(), 3));
    StoreWorker &seeder = store.registerWorker();
    store.seed(seeder, kKeys, kSeedValue);

    std::vector<StoreWorker *> workers(kThreads);
    for (unsigned t = 0; t < kThreads; ++t)
        workers[t] = &store.registerWorker();

    std::vector<uint64_t> committed(kThreads, 0);
    SenseBarrier barrier(kThreads);
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            Rng rng(1000 + t);
            barrier.arriveAndWait();
            for (unsigned op = 0; op < kOpsPerThread; ++op) {
                // Three DISTINCT keys so each committed RMW adds
                // exactly 3 to the table sum.
                std::set<uint64_t> picked;
                while (picked.size() < 3)
                    picked.insert(rng.nextBounded(kKeys));
                std::vector<uint64_t> keys(picked.begin(),
                                           picked.end());
                if (store.multiRmw(*workers[t], keys, 1) ==
                    TxnOutcome::kCommitted)
                    ++committed[t];
            }
        });
    }
    for (auto &th : pool)
        th.join();

    uint64_t totalCommitted = 0;
    for (uint64_t c : committed)
        totalCommitted += c;
    EXPECT_EQ(totalCommitted, uint64_t(kThreads) * kOpsPerThread);

    uint64_t sum = 0;
    for (uint64_t key = 0; key < kKeys; ++key) {
        uint64_t v = 0;
        bool found = false;
        ASSERT_EQ(store.get(seeder, key, v, found),
                  TxnOutcome::kCommitted);
        ASSERT_TRUE(found);
        sum += v;
    }
    EXPECT_EQ(sum, kKeys * kSeedValue + totalCommitted * 3);
}

/** StoreObserver -> check::History bridge (mirrors bench_store). */
class RecordingObserver final : public StoreObserver
{
  public:
    void
    onTxnBegin(unsigned worker) override
    {
        std::lock_guard<std::mutex> guard(lock_);
        history_.push(worker, check::HistKind::kBegin);
    }

    void
    onTxnCommit(const StoreOpRecord &rec) override
    {
        std::lock_guard<std::mutex> guard(lock_);
        history_.push(rec.worker, check::HistKind::kAttempt);
        for (const auto &[key, value] : rec.reads)
            history_.push(rec.worker, check::HistKind::kRead,
                          static_cast<unsigned>(key), value);
        for (const auto &[key, value] : rec.writes)
            history_.push(rec.worker, check::HistKind::kWrite,
                          static_cast<unsigned>(key), value);
        history_.push(rec.worker, check::HistKind::kCommit);
    }

    const check::History &history() const { return history_; }

  private:
    std::mutex lock_;
    check::History history_;
};

TEST_P(StoreAlgoTest, ConcurrentHistoriesAreStrictlySerializable)
{
    const unsigned kThreads = 3;
    const unsigned kOpsPerThread = 50;
    const uint64_t kKeys = 64; // Checker var ids are uint16.

    ShardedStore store(configFor(GetParam(), 3));
    StoreWorker &seeder = store.registerWorker();
    store.seed(seeder, kKeys, kSeedValue);

    RecordingObserver observer;
    store.setObserver(&observer);

    std::vector<StoreWorker *> workers(kThreads);
    for (unsigned t = 0; t < kThreads; ++t)
        workers[t] = &store.registerWorker();

    SenseBarrier barrier(kThreads);
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            Rng rng(77 + t);
            std::vector<std::pair<uint64_t, uint64_t>> scanOut;
            barrier.arriveAndWait();
            for (unsigned op = 0; op < kOpsPerThread; ++op) {
                uint64_t draw = rng.nextBounded(100);
                uint64_t key = rng.nextBounded(kKeys);
                if (draw < 30) {
                    uint64_t v = 0;
                    bool found = false;
                    ASSERT_EQ(store.get(*workers[t], key, v, found),
                              TxnOutcome::kCommitted);
                } else if (draw < 55) {
                    ASSERT_EQ(
                        store.put(*workers[t], key, rng.next() >> 1),
                        TxnOutcome::kCommitted);
                } else if (draw < 65) {
                    unsigned shard = static_cast<unsigned>(
                        rng.nextBounded(store.shardCount()));
                    ASSERT_EQ(store.scan(*workers[t], shard, key,
                                         key + 15, 8, scanOut),
                              TxnOutcome::kCommitted);
                } else {
                    std::vector<uint64_t> keys{
                        rng.nextBounded(kKeys), rng.nextBounded(kKeys),
                        rng.nextBounded(kKeys)};
                    ASSERT_EQ(store.multiRmw(*workers[t], keys, 1),
                              TxnOutcome::kCommitted);
                }
            }
        });
    }
    for (auto &th : pool)
        th.join();
    store.setObserver(nullptr);

    // Cross-shard commits must actually be exercised by the mix.
    EXPECT_GE(store.stats().get(Counter::kCrossShardCommits), 1u);

    std::vector<uint64_t> initial(kKeys, kSeedValue);
    check::CheckResult result =
        check::checkHistory(observer.history(), initial);
    EXPECT_TRUE(result.ok())
        << check::checkVerdictName(result.verdict) << ": "
        << result.detail;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, StoreAlgoTest, ::testing::ValuesIn(allAlgoKinds()),
    [](const ::testing::TestParamInfo<AlgoKind> &info) {
        std::string name = algoKindName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(ShardedStoreTest, HashPartitionCoversAllShards)
{
    ShardedStore store(configFor(AlgoKind::kRhNOrec, 4));
    std::set<unsigned> seen;
    for (uint64_t key = 0; key < 1024; ++key) {
        unsigned s = store.shardOf(key);
        ASSERT_LT(s, store.shardCount());
        seen.insert(s);
    }
    EXPECT_EQ(seen.size(), store.shardCount());
    for (unsigned s = 0; s < store.shardCount(); ++s)
        EXPECT_EQ(store.shardOf(store.keyForShard(s, 9)), s);
}

TEST(ShardedStoreTest, DeadlineZeroBudgetIsRejected)
{
    ShardedStore store(configFor(AlgoKind::kRhNOrec, 2));
    StoreWorker &w = store.registerWorker();
    store.seed(w, 16, kSeedValue);
    StoreOpts opts;
    opts.deadline = std::chrono::nanoseconds(1);
    // A 1ns budget cannot admit a cross-shard RMW; it must report the
    // deadline, not commit halfway.
    std::vector<uint64_t> keys{store.keyForShard(0, 0),
                               store.keyForShard(1, 1)};
    for (uint64_t key : keys)
        ASSERT_EQ(store.put(w, key, kSeedValue), TxnOutcome::kCommitted);
    TxnOutcome out = store.multiRmw(w, keys, 1, opts);
    if (out == TxnOutcome::kDeadlineExceeded) {
        uint64_t v = 0;
        bool found = false;
        for (uint64_t key : keys) {
            ASSERT_EQ(store.get(w, key, v, found),
                      TxnOutcome::kCommitted);
            EXPECT_TRUE(found);
            EXPECT_EQ(v, kSeedValue) << "partial cross-shard commit";
        }
    } else {
        EXPECT_EQ(out, TxnOutcome::kCommitted);
    }
}

} // namespace
} // namespace rhtm
