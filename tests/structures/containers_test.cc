/**
 * @file
 * Tests for the hash map, sorted list, and queue containers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>

#include "src/structures/tx_hashmap.h"
#include "src/structures/tx_list.h"
#include "src/structures/tx_queue.h"

#include "src/api/runtime.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace rhtm
{
namespace
{

//
// TxHashMap
//

TEST(HashMapTest, BasicOperations)
{
    TmRuntime rt(AlgoKind::kRhNOrec);
    TxHashMap map(8);
    ThreadCtx &ctx = rt.registerThread();
    rt.run(ctx, [&](Txn &tx) {
        EXPECT_TRUE(map.put(tx, 1, 10));
        EXPECT_TRUE(map.put(tx, 2, 20));
        EXPECT_FALSE(map.put(tx, 1, 11)) << "update";
        EXPECT_TRUE(map.putIfAbsent(tx, 3, 30));
        EXPECT_FALSE(map.putIfAbsent(tx, 3, 31));
    });
    rt.run(ctx, [&](Txn &tx) {
        uint64_t v = 0;
        EXPECT_TRUE(map.get(tx, 1, v));
        EXPECT_EQ(v, 11u);
        EXPECT_TRUE(map.get(tx, 3, v));
        EXPECT_EQ(v, 30u);
        EXPECT_FALSE(map.get(tx, 99, v));
        EXPECT_TRUE(map.remove(tx, 2));
        EXPECT_FALSE(map.remove(tx, 2));
    });
    EXPECT_EQ(map.sizeUnsync(), 2u);
    map.clearUnsync(ctx.mem());
    EXPECT_EQ(map.sizeUnsync(), 0u);
}

TEST(HashMapTest, AddToAccumulates)
{
    TmRuntime rt(AlgoKind::kRhNOrec);
    TxHashMap map(8);
    ThreadCtx &ctx = rt.registerThread();
    rt.run(ctx, [&](Txn &tx) {
        EXPECT_EQ(map.addTo(tx, 7, 5), 5u);
        EXPECT_EQ(map.addTo(tx, 7, 3), 8u);
    });
    uint64_t v = 0;
    rt.run(ctx, [&](Txn &tx) { EXPECT_TRUE(map.get(tx, 7, v)); });
    EXPECT_EQ(v, 8u);
    map.clearUnsync(ctx.mem());
}

TEST(HashMapTest, ChainsWithFewBuckets)
{
    // 2 buckets force long chains: exercises chain insert/remove.
    TmRuntime rt(AlgoKind::kRhNOrec);
    TxHashMap map(1);
    ThreadCtx &ctx = rt.registerThread();
    std::map<uint64_t, uint64_t> model;
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        uint64_t key = rng.nextBounded(64);
        if (rng.nextPercent(60)) {
            uint64_t value = rng.next();
            bool fresh = false;
            rt.run(ctx,
                   [&](Txn &tx) { fresh = map.put(tx, key, value); });
            EXPECT_EQ(fresh, model.find(key) == model.end());
            model[key] = value;
        } else {
            bool removed = false;
            rt.run(ctx, [&](Txn &tx) { removed = map.remove(tx, key); });
            EXPECT_EQ(removed, model.erase(key) == 1);
        }
    }
    EXPECT_EQ(map.sizeUnsync(), model.size());
    uint64_t seen = 0;
    map.forEachUnsync([&](uint64_t k, uint64_t v) {
        ++seen;
        auto it = model.find(k);
        ASSERT_NE(it, model.end());
        EXPECT_EQ(it->second, v);
    });
    EXPECT_EQ(seen, model.size());
    map.clearUnsync(ctx.mem());
}

TEST(HashMapTest, ConcurrentDistinctKeysAllLand)
{
    TmRuntime rt(AlgoKind::kRhNOrec);
    TxHashMap map(10);
    constexpr unsigned kThreads = 4;
    constexpr unsigned kPerThread = 1000;
    test::runThreads(rt, kThreads, [&](unsigned t, ThreadCtx &ctx) {
        for (unsigned i = 0; i < kPerThread; ++i) {
            uint64_t key = uint64_t(t) * kPerThread + i;
            rt.run(ctx,
                   [&](Txn &tx) { EXPECT_TRUE(map.put(tx, key, key)); });
        }
    });
    EXPECT_EQ(map.sizeUnsync(), uint64_t(kThreads) * kPerThread);
}

TEST(HashMapTest, ConcurrentAddToConservesSum)
{
    TmRuntime rt(AlgoKind::kHybridNOrec);
    TxHashMap map(4);
    constexpr unsigned kThreads = 4;
    constexpr unsigned kPerThread = 800;
    test::runThreads(rt, kThreads, [&](unsigned t, ThreadCtx &ctx) {
        Rng rng(t + 100);
        for (unsigned i = 0; i < kPerThread; ++i) {
            uint64_t key = rng.nextBounded(16);
            rt.run(ctx, [&](Txn &tx) { map.addTo(tx, key, 1); });
        }
    });
    uint64_t total = 0;
    map.forEachUnsync([&](uint64_t, uint64_t v) { total += v; });
    EXPECT_EQ(total, uint64_t(kThreads) * kPerThread);
}

//
// TxList
//

TEST(ListTest, SortedInsertRemoveContains)
{
    TmRuntime rt(AlgoKind::kRhNOrec);
    TxList list;
    ThreadCtx &ctx = rt.registerThread();
    rt.run(ctx, [&](Txn &tx) {
        EXPECT_TRUE(list.insert(tx, 5));
        EXPECT_TRUE(list.insert(tx, 1));
        EXPECT_TRUE(list.insert(tx, 9));
        EXPECT_TRUE(list.insert(tx, 3));
        EXPECT_FALSE(list.insert(tx, 5)) << "duplicate";
    });
    EXPECT_TRUE(list.isSortedUnsync());
    EXPECT_EQ(list.sizeUnsync(), 4u);
    rt.run(ctx, [&](Txn &tx) {
        EXPECT_TRUE(list.contains(tx, 3));
        EXPECT_FALSE(list.contains(tx, 4));
        EXPECT_TRUE(list.remove(tx, 1)) << "head removal";
        EXPECT_TRUE(list.remove(tx, 9)) << "tail removal";
        EXPECT_FALSE(list.remove(tx, 9));
    });
    EXPECT_TRUE(list.isSortedUnsync());
    EXPECT_EQ(list.sizeUnsync(), 2u);
    list.clearUnsync(ctx.mem());
}

TEST(ListTest, RandomizedAgainstStdSet)
{
    TmRuntime rt(AlgoKind::kNOrecLazy);
    TxList list;
    ThreadCtx &ctx = rt.registerThread();
    std::set<int64_t> model;
    Rng rng(17);
    for (int i = 0; i < 1500; ++i) {
        int64_t key = static_cast<int64_t>(rng.nextBounded(80));
        if (rng.nextPercent(50)) {
            bool fresh = false;
            rt.run(ctx, [&](Txn &tx) { fresh = list.insert(tx, key); });
            EXPECT_EQ(fresh, model.insert(key).second);
        } else {
            bool removed = false;
            rt.run(ctx,
                   [&](Txn &tx) { removed = list.remove(tx, key); });
            EXPECT_EQ(removed, model.erase(key) == 1);
        }
    }
    EXPECT_EQ(list.sizeUnsync(), model.size());
    EXPECT_TRUE(list.isSortedUnsync());
    list.clearUnsync(ctx.mem());
}

TEST(ListTest, ConcurrentInsertsKeepOrder)
{
    TmRuntime rt(AlgoKind::kRhNOrec);
    TxList list;
    constexpr unsigned kThreads = 4;
    constexpr unsigned kPerThread = 250;
    test::runThreads(rt, kThreads, [&](unsigned t, ThreadCtx &ctx) {
        for (unsigned i = 0; i < kPerThread; ++i) {
            int64_t key = static_cast<int64_t>(i * kThreads + t);
            rt.run(ctx, [&](Txn &tx) { list.insert(tx, key); });
        }
    });
    EXPECT_EQ(list.sizeUnsync(), uint64_t(kThreads) * kPerThread);
    EXPECT_TRUE(list.isSortedUnsync());
}

//
// TxQueue
//

TEST(QueueTest, FifoOrder)
{
    TmRuntime rt(AlgoKind::kRhNOrec);
    TxQueue queue;
    ThreadCtx &ctx = rt.registerThread();
    rt.run(ctx, [&](Txn &tx) {
        EXPECT_TRUE(queue.empty(tx));
        for (uint64_t i = 0; i < 10; ++i)
            queue.push(tx, i);
    });
    rt.run(ctx, [&](Txn &tx) {
        for (uint64_t i = 0; i < 10; ++i) {
            uint64_t v = 0;
            EXPECT_TRUE(queue.pop(tx, v));
            EXPECT_EQ(v, i);
        }
        uint64_t v;
        EXPECT_FALSE(queue.pop(tx, v));
        EXPECT_TRUE(queue.empty(tx));
    });
    rt.memory().drainAll();
}

TEST(QueueTest, InterleavedPushPop)
{
    TmRuntime rt(AlgoKind::kNOrec);
    TxQueue queue;
    ThreadCtx &ctx = rt.registerThread();
    uint64_t next_push = 0, next_pop = 0;
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        if (rng.nextPercent(55) || next_push == next_pop) {
            rt.run(ctx, [&](Txn &tx) { queue.push(tx, next_push); });
            ++next_push;
        } else {
            uint64_t v = 0;
            rt.run(ctx, [&](Txn &tx) { EXPECT_TRUE(queue.pop(tx, v)); });
            EXPECT_EQ(v, next_pop);
            ++next_pop;
        }
    }
    EXPECT_EQ(queue.sizeUnsync(), next_push - next_pop);
    ThreadCtx &c2 = rt.registerThread();
    (void)c2;
    queue.clearUnsync(ctx.mem());
    EXPECT_EQ(queue.sizeUnsync(), 0u);
}

TEST(QueueTest, ConcurrentProducersConsumers)
{
    TmRuntime rt(AlgoKind::kRhNOrec);
    TxQueue queue;
    constexpr unsigned kProducers = 2;
    constexpr unsigned kConsumers = 2;
    constexpr unsigned kItems = 1500;
    std::atomic<uint64_t> popped_sum{0};
    std::atomic<uint64_t> popped_count{0};

    test::runThreads(
        rt, kProducers + kConsumers, [&](unsigned t, ThreadCtx &ctx) {
            if (t < kProducers) {
                for (unsigned i = 0; i < kItems; ++i) {
                    uint64_t v = uint64_t(t) * kItems + i + 1;
                    rt.run(ctx, [&](Txn &tx) { queue.push(tx, v); });
                }
            } else {
                while (popped_count.load() < kProducers * kItems) {
                    uint64_t v = 0;
                    bool ok = false;
                    rt.run(ctx,
                           [&](Txn &tx) { ok = queue.pop(tx, v); });
                    if (ok) {
                        popped_sum.fetch_add(v);
                        popped_count.fetch_add(1);
                    }
                }
            }
        });

    uint64_t n = uint64_t(kProducers) * kItems;
    EXPECT_EQ(popped_count.load(), n);
    EXPECT_EQ(popped_sum.load(), n * (n + 1) / 2);
    EXPECT_EQ(queue.sizeUnsync(), 0u);
}

} // namespace
} // namespace rhtm
