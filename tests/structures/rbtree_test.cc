/**
 * @file
 * Red-black tree tests: model checking against std::map, invariant
 * validation after randomized operation streams, and concurrent
 * stress across every TM algorithm.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>

#include "src/structures/tx_rbtree.h"

#include "src/api/runtime.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace rhtm
{
namespace
{

class RbTreeAlgoTest : public ::testing::TestWithParam<AlgoKind>
{
  protected:
    RbTreeAlgoTest() : rt(GetParam()) {}

    TmRuntime rt;
    TxRbTree tree;
};

TEST_P(RbTreeAlgoTest, InsertLookupRemove)
{
    ThreadCtx &ctx = rt.registerThread();
    rt.run(ctx, [&](Txn &tx) {
        EXPECT_TRUE(tree.put(tx, 5, 50));
        EXPECT_TRUE(tree.put(tx, 3, 30));
        EXPECT_TRUE(tree.put(tx, 8, 80));
        EXPECT_FALSE(tree.put(tx, 5, 55)) << "update, not insert";
    });
    rt.run(ctx, [&](Txn &tx) {
        int64_t v = 0;
        EXPECT_TRUE(tree.get(tx, 5, v));
        EXPECT_EQ(v, 55);
        EXPECT_TRUE(tree.get(tx, 3, v));
        EXPECT_EQ(v, 30);
        EXPECT_FALSE(tree.get(tx, 7, v));
    });
    rt.run(ctx, [&](Txn &tx) {
        EXPECT_TRUE(tree.remove(tx, 3));
        EXPECT_FALSE(tree.remove(tx, 3));
        EXPECT_FALSE(tree.contains(tx, 3));
        EXPECT_TRUE(tree.contains(tx, 8));
    });
    EXPECT_EQ(tree.sizeUnsync(), 2u);
    std::string why;
    EXPECT_TRUE(tree.validateStructure(&why)) << why;
    tree.clearUnsync(ctx.mem());
}

TEST_P(RbTreeAlgoTest, RandomizedAgainstStdMap)
{
    ThreadCtx &ctx = rt.registerThread();
    std::map<int64_t, int64_t> model;
    Rng rng(12345);
    for (int i = 0; i < 4000; ++i) {
        int64_t key = static_cast<int64_t>(rng.nextBounded(300));
        unsigned op = static_cast<unsigned>(rng.nextBounded(10));
        if (op < 4) {
            int64_t value = static_cast<int64_t>(rng.nextBounded(1000));
            bool inserted = false;
            rt.run(ctx, [&](Txn &tx) {
                inserted = tree.put(tx, key, value);
            });
            EXPECT_EQ(inserted, model.find(key) == model.end());
            model[key] = value;
        } else if (op < 7) {
            bool removed = false;
            rt.run(ctx,
                   [&](Txn &tx) { removed = tree.remove(tx, key); });
            EXPECT_EQ(removed, model.erase(key) == 1);
        } else {
            int64_t got = -1;
            bool found = false;
            rt.run(ctx,
                   [&](Txn &tx) { found = tree.get(tx, key, got); });
            auto it = model.find(key);
            EXPECT_EQ(found, it != model.end());
            if (found)
                EXPECT_EQ(got, it->second);
        }
        if (i % 500 == 0) {
            std::string why;
            ASSERT_TRUE(tree.validateStructure(&why))
                << "after op " << i << ": " << why;
        }
    }
    EXPECT_EQ(tree.sizeUnsync(), model.size());
    std::string why;
    EXPECT_TRUE(tree.validateStructure(&why)) << why;
    tree.clearUnsync(ctx.mem());
}

TEST_P(RbTreeAlgoTest, AscendingAndDescendingInsertions)
{
    ThreadCtx &ctx = rt.registerThread();
    for (int64_t k = 0; k < 256; ++k)
        rt.run(ctx, [&](Txn &tx) { tree.put(tx, k, k); });
    for (int64_t k = 511; k >= 256; --k)
        rt.run(ctx, [&](Txn &tx) { tree.put(tx, k, k); });
    EXPECT_EQ(tree.sizeUnsync(), 512u);
    std::string why;
    EXPECT_TRUE(tree.validateStructure(&why)) << why;
    // Remove in an interleaved order.
    for (int64_t k = 0; k < 512; k += 2)
        rt.run(ctx, [&](Txn &tx) { tree.remove(tx, k); });
    EXPECT_EQ(tree.sizeUnsync(), 256u);
    EXPECT_TRUE(tree.validateStructure(&why)) << why;
    tree.clearUnsync(ctx.mem());
}

TEST_P(RbTreeAlgoTest, ConcurrentMixedWorkloadKeepsInvariants)
{
    constexpr unsigned kThreads = 4;
    constexpr unsigned kOpsPerThread = 1200;
    constexpr unsigned kKeyRange = 512;

    // Pre-populate half the range.
    {
        ThreadCtx &ctx = rt.registerThread();
        for (unsigned k = 0; k < kKeyRange; k += 2) {
            rt.run(ctx, [&](Txn &tx) {
                tree.put(tx, static_cast<int64_t>(k), k);
            });
        }
    }

    std::atomic<int64_t> net_inserts{0};
    test::runThreads(rt, kThreads, [&](unsigned t, ThreadCtx &ctx) {
        Rng rng(t * 7919 + 1);
        for (unsigned i = 0; i < kOpsPerThread; ++i) {
            int64_t key =
                static_cast<int64_t>(rng.nextBounded(kKeyRange));
            unsigned op = static_cast<unsigned>(rng.nextBounded(100));
            if (op < 20) {
                bool inserted = false;
                rt.run(ctx, [&](Txn &tx) {
                    inserted = tree.put(tx, key, key * 10);
                });
                if (inserted)
                    net_inserts.fetch_add(1);
            } else if (op < 40) {
                bool removed = false;
                rt.run(ctx,
                       [&](Txn &tx) { removed = tree.remove(tx, key); });
                if (removed)
                    net_inserts.fetch_sub(1);
            } else {
                rt.run(ctx, [&](Txn &tx) {
                    int64_t v;
                    (void)tree.get(tx, key, v);
                });
            }
        }
    });

    int64_t expected =
        static_cast<int64_t>(kKeyRange / 2) + net_inserts.load();
    EXPECT_EQ(tree.sizeUnsync(), static_cast<uint64_t>(expected));
    std::string why;
    EXPECT_TRUE(tree.validateStructure(&why)) << why;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, RbTreeAlgoTest,
    ::testing::Values(AlgoKind::kLockElision, AlgoKind::kNOrec,
                      AlgoKind::kNOrecLazy, AlgoKind::kTl2,
                      AlgoKind::kHybridNOrec, AlgoKind::kHybridNOrecLazy,
                      AlgoKind::kRhNOrec, AlgoKind::kRhTl2),
    [](const ::testing::TestParamInfo<AlgoKind> &info) {
        std::string name = algoKindName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(RbTreeEdgeTest, EmptyTreeOperations)
{
    TmRuntime rt(AlgoKind::kRhNOrec);
    TxRbTree tree;
    ThreadCtx &ctx = rt.registerThread();
    rt.run(ctx, [&](Txn &tx) {
        int64_t v;
        EXPECT_FALSE(tree.get(tx, 1, v));
        EXPECT_FALSE(tree.remove(tx, 1));
        EXPECT_FALSE(tree.contains(tx, 1));
    });
    EXPECT_EQ(tree.sizeUnsync(), 0u);
    EXPECT_TRUE(tree.validateStructure());
}

TEST(RbTreeEdgeTest, SingleNodeLifecycle)
{
    TmRuntime rt(AlgoKind::kRhNOrec);
    TxRbTree tree;
    ThreadCtx &ctx = rt.registerThread();
    rt.run(ctx, [&](Txn &tx) { tree.put(tx, 42, 1); });
    EXPECT_TRUE(tree.validateStructure());
    rt.run(ctx, [&](Txn &tx) { EXPECT_TRUE(tree.remove(tx, 42)); });
    EXPECT_EQ(tree.sizeUnsync(), 0u);
    rt.memory().drainAll();
}

TEST(RbTreeEdgeTest, NegativeAndExtremeKeys)
{
    TmRuntime rt(AlgoKind::kRhNOrec);
    TxRbTree tree;
    ThreadCtx &ctx = rt.registerThread();
    const int64_t keys[] = {0, -1, 1, INT64_MIN + 1, INT64_MAX - 1,
                            -1000000, 1000000};
    rt.run(ctx, [&](Txn &tx) {
        for (int64_t k : keys)
            EXPECT_TRUE(tree.put(tx, k, k));
    });
    rt.run(ctx, [&](Txn &tx) {
        for (int64_t k : keys) {
            int64_t v;
            EXPECT_TRUE(tree.get(tx, k, v));
            EXPECT_EQ(v, k);
        }
    });
    std::string why;
    EXPECT_TRUE(tree.validateStructure(&why)) << why;
    tree.clearUnsync(ctx.mem());
}

} // namespace
} // namespace rhtm
