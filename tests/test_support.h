/**
 * @file
 * Shared helpers for multi-threaded TM tests.
 */

#ifndef RHTM_TESTS_TEST_SUPPORT_H
#define RHTM_TESTS_TEST_SUPPORT_H

#include <functional>
#include <thread>
#include <vector>

#include "src/api/runtime.h"
#include "src/util/barrier.h"

namespace rhtm
{
namespace test
{

/**
 * Spawn @p n threads; each registers with @p rt and runs @p fn(i, ctx)
 * after a common start barrier. Joins all threads before returning.
 */
inline void
runThreads(TmRuntime &rt, unsigned n,
           const std::function<void(unsigned, ThreadCtx &)> &fn)
{
    SenseBarrier barrier(n);
    std::vector<ThreadCtx *> ctxs(n);
    for (unsigned i = 0; i < n; ++i)
        ctxs[i] = &rt.registerThread();
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        threads.emplace_back([&, i] {
            barrier.arriveAndWait();
            fn(i, *ctxs[i]);
        });
    }
    for (auto &t : threads)
        t.join();
}

} // namespace test
} // namespace rhtm

#endif // RHTM_TESTS_TEST_SUPPORT_H
