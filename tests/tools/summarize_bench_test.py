#!/usr/bin/env python3
"""Regression test: summarize_bench.py on mixed-era captures.

Usage: summarize_bench_test.py <repo_root>

Drives tools/summarize_bench.py over the fixture pair in
tests/tools/fixtures/ -- a current capture (31 columns, with the
overload columns) and a legacy pre-overload one (28 columns) -- three
ways: each file alone, then the directory holding both. The directory
form used to crash with IsADirectoryError, which is exactly how mixed
legacy/current captures end up being summarized; now the fold-in is
per-file and every row must survive into one table.
"""

import os
import subprocess
import sys


def run(tool, target):
    proc = subprocess.run(
        [sys.executable, tool, target, "--threads=8"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    return proc.returncode, proc.stdout


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip().splitlines()[2].strip())
        return 2
    root = sys.argv[1]
    tool = os.path.join(root, "tools", "summarize_bench.py")
    fixtures = os.path.join(root, "tests", "tools", "fixtures")
    current = os.path.join(fixtures, "current.csv")
    legacy = os.path.join(fixtures, "legacy_pre_overload.csv")

    failures = []

    def check(name, cond, detail):
        if not cond:
            failures.append(f"{name}: {detail}")

    # Each era parses on its own.
    rc, out = run(tool, current)
    check("current-alone", rc == 0, f"exit {rc}\n{out}")
    check("current-alone", "12,346" in out, f"missing row\n{out}")

    rc, out = run(tool, legacy)
    check("legacy-alone", rc == 0, f"exit {rc}\n{out}")
    check("legacy-alone", "11,111" in out, f"missing row\n{out}")

    # The mixed directory: no crash, and rows from BOTH eras fold
    # into the summary (the legacy file contributes the norec row,
    # the current one rh-norec and hy-norec).
    rc, out = run(tool, fixtures)
    check("mixed-dir", rc == 0, f"exit {rc}\n{out}")
    for needle in ("12,346", "9,876", "11,111"):
        check("mixed-dir", needle in out,
              f"row {needle} not folded in\n{out}")
    check("mixed-dir", "rh/hy throughput" in out,
          f"headline ratios missing\n{out}")

    if failures:
        print("summarize_bench_test FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("summarize_bench_test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
