/**
 * @file
 * Tests for the bounded exponential Backoff helper: the spin limit
 * doubles per step up to the cap, steps at the cap turn into OS
 * yields, and reset() drops back to the shortest wait.
 */

#include <gtest/gtest.h>

#include "src/util/backoff.h"

namespace rhtm
{
namespace
{

TEST(BackoffTest, LimitDoublesPerStepUntilTheCap)
{
    Backoff b(64);
    EXPECT_EQ(b.limit(), 1u);
    EXPECT_EQ(b.maxSpins(), 64u);
    uint32_t expected = 1;
    while (b.limit() < b.maxSpins()) {
        EXPECT_EQ(b.limit(), expected);
        EXPECT_EQ(b.pause(), BackoffAction::kSpun);
        expected <<= 1;
    }
    EXPECT_EQ(b.limit(), 64u) << "doubling saturates exactly at the cap";
}

TEST(BackoffTest, StepsAtTheCapYieldInsteadOfSpinning)
{
    Backoff b(8);
    while (b.limit() < b.maxSpins())
        b.pause();
    // Once saturated, every further step hands the CPU to the OS so a
    // preempted lock holder can run; the limit stops growing.
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(b.pause(), BackoffAction::kYielded);
        EXPECT_EQ(b.limit(), 8u);
    }
}

TEST(BackoffTest, ResetRestartsTheDoubling)
{
    Backoff b(16);
    b.pause();
    b.pause();
    EXPECT_GT(b.limit(), 1u);
    b.reset();
    EXPECT_EQ(b.limit(), 1u);
    EXPECT_EQ(b.pause(), BackoffAction::kSpun);
}

TEST(BackoffTest, DefaultCapIsReachedInTenSteps)
{
    // The default cap (1024 = 2^10) bounds the pre-yield spinning to
    // ~2k relax hints total; a regression here silently turns short
    // waits into scheduler round-trips (or unbounded spins).
    Backoff b;
    int spun = 0;
    while (b.pause() == BackoffAction::kSpun)
        ++spun;
    EXPECT_EQ(spun, 10);
}

} // namespace
} // namespace rhtm
