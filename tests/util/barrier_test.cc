/**
 * @file
 * Tests for the sense-reversing barrier and backoff helpers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/util/backoff.h"
#include "src/util/barrier.h"

namespace rhtm
{
namespace
{

TEST(BarrierTest, AllThreadsPassEachRound)
{
    constexpr int kThreads = 4;
    constexpr int kRounds = 50;
    SenseBarrier barrier(kThreads);
    std::atomic<int> phase_counts[kRounds];
    for (auto &c : phase_counts)
        c.store(0);

    std::vector<std::thread> threads;
    std::atomic<bool> violation{false};
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int r = 0; r < kRounds; ++r) {
                phase_counts[r].fetch_add(1);
                barrier.arriveAndWait();
                // After the barrier every thread must observe the full
                // count for this round.
                if (phase_counts[r].load() != kThreads)
                    violation.store(true);
                barrier.arriveAndWait();
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_FALSE(violation.load());
}

TEST(BarrierTest, SingleThreadNeverBlocks)
{
    SenseBarrier barrier(1);
    for (int i = 0; i < 100; ++i)
        barrier.arriveAndWait();
    SUCCEED();
}

TEST(BackoffTest, PauseTerminates)
{
    Backoff backoff(64);
    for (int i = 0; i < 100; ++i)
        backoff.pause();
    backoff.reset();
    backoff.pause();
    SUCCEED();
}

TEST(BackoffTest, SpinUntilSeesFlagFromOtherThread)
{
    std::atomic<bool> flag{false};
    std::thread setter([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        flag.store(true, std::memory_order_release);
    });
    spinUntil([&] { return flag.load(std::memory_order_acquire); });
    setter.join();
    SUCCEED();
}

} // namespace
} // namespace rhtm
