/**
 * @file
 * Unit tests for the CLI option parser.
 */

#include <gtest/gtest.h>

#include "src/util/cli.h"

namespace rhtm
{
namespace
{

CliOptions
parse(std::vector<std::string> tokens)
{
    std::vector<char *> argv;
    static std::vector<std::string> storage;
    storage = std::move(tokens);
    argv.push_back(const_cast<char *>("prog"));
    for (auto &s : storage)
        argv.push_back(const_cast<char *>(s.c_str()));
    return CliOptions(static_cast<int>(argv.size()), argv.data());
}

TEST(CliTest, ParsesKeyValue)
{
    auto opts = parse({"--threads=8", "--mutation=40"});
    EXPECT_EQ(opts.getInt("threads", 0), 8);
    EXPECT_EQ(opts.getInt("mutation", 0), 40);
}

TEST(CliTest, BareFlagIsOne)
{
    auto opts = parse({"--verbose"});
    EXPECT_TRUE(opts.has("verbose"));
    EXPECT_EQ(opts.getInt("verbose", 0), 1);
}

TEST(CliTest, MissingKeyGivesDefault)
{
    auto opts = parse({});
    EXPECT_EQ(opts.getInt("threads", 4), 4);
    EXPECT_EQ(opts.getString("algo", "rh-norec"), "rh-norec");
    EXPECT_DOUBLE_EQ(opts.getDouble("prob", 0.5), 0.5);
}

TEST(CliTest, MalformedIntGivesDefault)
{
    auto opts = parse({"--threads=abc"});
    EXPECT_EQ(opts.getInt("threads", 4), 4);
}

TEST(CliTest, DoubleParses)
{
    auto opts = parse({"--prob=0.125"});
    EXPECT_DOUBLE_EQ(opts.getDouble("prob", 0), 0.125);
}

TEST(CliTest, IntListParses)
{
    auto opts = parse({"--threads=1,2,4,8"});
    auto v = opts.getIntList("threads", {});
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], 1);
    EXPECT_EQ(v[3], 8);
}

TEST(CliTest, IntListDefaultWhenAbsent)
{
    auto opts = parse({});
    auto v = opts.getIntList("threads", {1, 2});
    ASSERT_EQ(v.size(), 2u);
}

TEST(CliTest, NonOptionTokensAreErrors)
{
    auto opts = parse({"stray", "--ok=1"});
    ASSERT_EQ(opts.errors().size(), 1u);
    EXPECT_EQ(opts.errors()[0], "stray");
}

TEST(CliTest, LastDuplicateWins)
{
    auto opts = parse({"--n=1", "--n=2"});
    EXPECT_EQ(opts.getInt("n", 0), 2);
}

} // namespace
} // namespace rhtm
