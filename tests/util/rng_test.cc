/**
 * @file
 * Unit tests for the xorshift128+ RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/util/rng.h"

namespace rhtm
{
namespace
{

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(RngTest, ZeroSeedIsLegal)
{
    Rng r(0);
    // xorshift with an all-zero state would be stuck at zero; the
    // SplitMix64 expansion must prevent that.
    bool nonzero = false;
    for (int i = 0; i < 100; ++i)
        nonzero |= (r.next() != 0);
    EXPECT_TRUE(nonzero);
}

TEST(RngTest, BoundedStaysInBounds)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(RngTest, RangeIsInclusive)
{
    Rng r(9);
    std::set<uint64_t> seen;
    for (int i = 0; i < 10000; ++i) {
        uint64_t v = r.nextRange(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u) << "all values in [3,6] should appear";
}

TEST(RngTest, PercentRoughlyCalibrated)
{
    Rng r(11);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.nextPercent(25);
    EXPECT_NEAR(hits / double(n), 0.25, 0.02);
}

TEST(RngTest, PercentZeroNeverHits)
{
    Rng r(13);
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(r.nextPercent(0));
}

TEST(RngTest, PercentHundredAlwaysHits)
{
    Rng r(13);
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(r.nextPercent(100));
}

TEST(RngTest, UniformityCoarseChiSquare)
{
    Rng r(17);
    const int buckets = 16;
    const int n = 160000;
    int counts[buckets] = {};
    for (int i = 0; i < n; ++i)
        counts[r.nextBounded(buckets)]++;
    double expected = n / double(buckets);
    double chi2 = 0;
    for (int c : counts)
        chi2 += (c - expected) * (c - expected) / expected;
    // 15 dof; 99.9th percentile ~ 37.7.
    EXPECT_LT(chi2, 37.7);
}

} // namespace
} // namespace rhtm
