/**
 * @file
 * Distribution-shape tests for the seeded Zipfian generator: the
 * store benchmark leans on it for skewed key popularity, so the shape
 * (hot head, monotone tail, uniform degenerate case) and determinism
 * are contract, not implementation detail.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/util/zipf.h"

namespace rhtm
{
namespace
{

std::vector<uint64_t>
drawCounts(uint64_t n, double theta, uint64_t seed, uint64_t draws)
{
    ZipfGenerator gen(n, theta, seed);
    std::vector<uint64_t> counts(n, 0);
    for (uint64_t i = 0; i < draws; ++i) {
        uint64_t rank = gen.next();
        EXPECT_LT(rank, n);
        ++counts[rank];
    }
    return counts;
}

TEST(ZipfTest, DeterministicPerSeed)
{
    ZipfGenerator a(1024, 0.9, 42);
    ZipfGenerator b(1024, 0.9, 42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(ZipfTest, DistinctSeedsDiverge)
{
    ZipfGenerator a(1 << 20, 0.9, 1);
    ZipfGenerator b(1 << 20, 0.9, 2);
    unsigned differing = 0;
    for (int i = 0; i < 100; ++i)
        differing += a.next() != b.next() ? 1 : 0;
    EXPECT_GT(differing, 50u);
}

TEST(ZipfTest, ThetaZeroIsUniform)
{
    const uint64_t n = 16;
    const uint64_t draws = 64000;
    std::vector<uint64_t> counts = drawCounts(n, 0.0, 7, draws);
    const double expect = static_cast<double>(draws) / n;
    for (uint64_t r = 0; r < n; ++r) {
        EXPECT_GT(counts[r], expect * 0.8) << "rank " << r;
        EXPECT_LT(counts[r], expect * 1.2) << "rank " << r;
    }
}

TEST(ZipfTest, RankZeroIsHottest)
{
    const uint64_t n = 1000;
    std::vector<uint64_t> counts = drawCounts(n, 0.9, 11, 50000);
    for (uint64_t r = 1; r < n; ++r)
        EXPECT_GE(counts[0], counts[r]) << "rank " << r;
}

TEST(ZipfTest, HigherThetaConcentratesMass)
{
    const uint64_t n = 4096;
    const uint64_t draws = 50000;
    // Mass on the 16 hottest ranks must grow with skew.
    uint64_t lastHead = 0;
    for (double theta : {0.0, 0.5, 0.9, 1.2}) {
        std::vector<uint64_t> counts = drawCounts(n, theta, 3, draws);
        uint64_t head = 0;
        for (uint64_t r = 0; r < 16; ++r)
            head += counts[r];
        EXPECT_GT(head, lastHead) << "theta " << theta;
        lastHead = head;
    }
    // At theta=1.2 the head holds most of the mass.
    EXPECT_GT(lastHead, draws / 2);
}

TEST(ZipfTest, TailStillReachable)
{
    const uint64_t n = 64;
    std::vector<uint64_t> counts = drawCounts(n, 0.9, 5, 100000);
    for (uint64_t r = 0; r < n; ++r)
        EXPECT_GT(counts[r], 0u) << "rank " << r;
}

} // namespace
} // namespace rhtm
