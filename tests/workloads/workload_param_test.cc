/**
 * @file
 * Parameter sweeps over the workload kernels: invariants must hold
 * across sizes, contention settings, and degenerate configurations,
 * not just the benchmark defaults.
 */

#include <gtest/gtest.h>

#include "src/workloads/genome.h"
#include "src/workloads/intruder.h"
#include "src/workloads/kmeans.h"
#include "src/workloads/labyrinth.h"
#include "src/workloads/rbtree_bench.h"
#include "src/workloads/ssca2.h"
#include "src/workloads/vacation.h"
#include "src/workloads/yada.h"

#include "tests/test_support.h"

namespace rhtm
{
namespace
{

/** Run @p w on two threads for a fixed op count and verify. */
void
exercise(Workload &w, unsigned ops_per_thread = 300)
{
    TmRuntime rt(AlgoKind::kRhNOrec);
    {
        ThreadCtx &ctx = rt.registerThread();
        w.setup(rt, ctx);
    }
    test::runThreads(rt, 2, [&](unsigned t, ThreadCtx &ctx) {
        Rng rng(t * 17 + 5);
        for (unsigned i = 0; i < ops_per_thread; ++i)
            w.runOp(rt, ctx, rng);
    });
    std::string why;
    EXPECT_TRUE(w.verify(rt, &why)) << w.name() << ": " << why;
}

class VacationParamTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(VacationParamTest, InvariantsAcrossQueryRangeAndMix)
{
    auto [range_pct, reserve_pct] = GetParam();
    VacationParams p;
    p.resourcesPerTable = 128;
    p.customers = 64;
    p.queryRangePct = range_pct;
    p.reservePct = reserve_pct;
    p.cancelPct = (100 - reserve_pct) / 2;
    VacationWorkload w(p);
    exercise(w);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VacationParamTest,
    ::testing::Combine(::testing::Values(5u, 50u, 100u),
                       ::testing::Values(40u, 80u, 98u)),
    [](const auto &info) {
        return "range" + std::to_string(std::get<0>(info.param)) +
               "_reserve" + std::to_string(std::get<1>(info.param));
    });

class IntruderParamTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(IntruderParamTest, InvariantsAcrossFlowShapes)
{
    auto [flows, max_frags] = GetParam();
    IntruderParams p;
    p.flows = flows;
    p.maxFragsPerFlow = max_frags;
    p.seedDepth = 32;
    IntruderWorkload w(p);
    exercise(w, 600);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IntruderParamTest,
    ::testing::Combine(::testing::Values(16u, 256u),
                       ::testing::Values(1u, 4u, 48u)),
    [](const auto &info) {
        return "flows" + std::to_string(std::get<0>(info.param)) +
               "_frags" + std::to_string(std::get<1>(info.param));
    });

TEST(WorkloadParamTest, GenomeSingleDuplication)
{
    GenomeParams p;
    p.genomeLength = 256;
    p.duplication = 1;
    GenomeWorkload w(p);
    exercise(w, 400);
}

TEST(WorkloadParamTest, GenomeHighDuplication)
{
    GenomeParams p;
    p.genomeLength = 128;
    p.duplication = 16;
    GenomeWorkload w(p);
    exercise(w, 1200);
}

TEST(WorkloadParamTest, Ssca2TinyGraphHighContention)
{
    Ssca2Params p;
    p.nodes = 8; // Every op collides with someone.
    Ssca2Workload w(p);
    exercise(w, 500);
}

TEST(WorkloadParamTest, KmeansSingleClusterSerializesEverything)
{
    KmeansParams p;
    p.clusters = 1; // All threads hammer one accumulator.
    KmeansWorkload w(p);
    exercise(w, 500);
}

TEST(WorkloadParamTest, KmeansManyDimensionsClamped)
{
    KmeansParams p;
    p.dims = 32; // Implementation clamps to 8.
    KmeansWorkload w(p);
    exercise(w, 300);
}

TEST(WorkloadParamTest, LabyrinthTinyGridConstantCollisions)
{
    LabyrinthParams p;
    p.width = 8;
    p.height = 8;
    LabyrinthWorkload w(p);
    exercise(w, 400);
}

TEST(WorkloadParamTest, LabyrinthDegenerateOneCellGrid)
{
    LabyrinthParams p;
    p.width = 1;
    p.height = 1;
    LabyrinthWorkload w(p);
    exercise(w, 100);
}

TEST(WorkloadParamTest, YadaAllInitiallyGood)
{
    YadaParams p;
    p.initialTriangles = 128;
    p.initialBadPct = 0; // Queue starts empty: only reseeds run.
    YadaWorkload w(p);
    exercise(w, 300);
}

TEST(WorkloadParamTest, YadaAllInitiallyBad)
{
    YadaParams p;
    p.initialTriangles = 128;
    p.initialBadPct = 100;
    p.childBadPct = 50;
    YadaWorkload w(p);
    exercise(w, 600);
}

TEST(WorkloadParamTest, RbTreeTinyTreeHighContention)
{
    RbTreeBenchParams p;
    p.initialSize = 16;
    p.mutationPct = 80;
    RbTreeBenchWorkload w(p);
    exercise(w, 800);
}

TEST(WorkloadParamTest, RbTreeReadOnlyConfiguration)
{
    RbTreeBenchParams p;
    p.initialSize = 64;
    p.mutationPct = 0;
    RbTreeBenchWorkload w(p);
    exercise(w, 500);
}

} // namespace
} // namespace rhtm
