/**
 * @file
 * Workload kernels stressed under every TM algorithm: run setup,
 * hammer runOp from several threads, and check the kernel's global
 * invariant. These are the integration tests that tie the whole stack
 * together (runtime + algorithm + structures + workload).
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "src/workloads/genome.h"
#include "src/workloads/intruder.h"
#include "src/workloads/kmeans.h"
#include "src/workloads/labyrinth.h"
#include "src/workloads/ssca2.h"
#include "src/workloads/vacation.h"
#include "src/workloads/yada.h"

#include "tests/test_support.h"

namespace rhtm
{
namespace
{

using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

struct Case
{
    const char *workload;
    WorkloadFactory make;
    AlgoKind algo;
};

std::vector<Case>
allCases()
{
    std::vector<std::pair<const char *, WorkloadFactory>> workloads = {
        {"vacation_low",
         [] {
             VacationParams p = VacationParams::low();
             p.resourcesPerTable = 256;
             p.customers = 256;
             return std::make_unique<VacationWorkload>(p);
         }},
        {"vacation_high",
         [] {
             VacationParams p = VacationParams::high();
             p.resourcesPerTable = 256;
             p.customers = 256;
             return std::make_unique<VacationWorkload>(p);
         }},
        {"intruder",
         [] {
             IntruderParams p;
             p.flows = 512;
             return std::make_unique<IntruderWorkload>(p);
         }},
        {"genome",
         [] {
             GenomeParams p;
             p.genomeLength = 1024;
             p.duplication = 3;
             return std::make_unique<GenomeWorkload>(p);
         }},
        {"ssca2",
         [] {
             Ssca2Params p;
             p.nodes = 1024;
             return std::make_unique<Ssca2Workload>(p);
         }},
        {"kmeans",
         [] {
             KmeansParams p;
             p.clusters = 8;
             return std::make_unique<KmeansWorkload>(p);
         }},
        {"labyrinth",
         [] {
             LabyrinthParams p;
             p.width = 48;
             p.height = 48;
             return std::make_unique<LabyrinthWorkload>(p);
         }},
        {"yada",
         [] {
             YadaParams p;
             p.initialTriangles = 512;
             return std::make_unique<YadaWorkload>(p);
         }},
    };
    std::vector<Case> cases;
    for (auto &[name, make] : workloads) {
        for (AlgoKind algo : allAlgoKinds())
            cases.push_back({name, make, algo});
    }
    return cases;
}

class WorkloadTest : public ::testing::TestWithParam<Case>
{
};

TEST_P(WorkloadTest, ConcurrentStressKeepsInvariants)
{
    const Case &c = GetParam();
    TmRuntime rt(c.algo);
    auto workload = c.make();

    {
        ThreadCtx &setup_ctx = rt.registerThread();
        workload->setup(rt, setup_ctx);
    }
    std::string why;
    ASSERT_TRUE(workload->verify(rt, &why)) << "after setup: " << why;

    constexpr unsigned kThreads = 4;
    constexpr unsigned kOpsPerThread = 400;
    test::runThreads(rt, kThreads, [&](unsigned t, ThreadCtx &ctx) {
        Rng rng(t * 1000003 + 7);
        for (unsigned i = 0; i < kOpsPerThread; ++i)
            workload->runOp(rt, ctx, rng);
    });

    EXPECT_TRUE(workload->verify(rt, &why)) << why;
    EXPECT_GE(rt.stats().operations(),
              uint64_t(kThreads) * kOpsPerThread);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsAllAlgorithms, WorkloadTest,
    ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<Case> &info) {
        std::string name = std::string(info.param.workload) + "_" +
                           algoKindName(info.param.algo);
        for (char &ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });

TEST(WorkloadSerialTest, GenomeCompletesChainSingleThreaded)
{
    GenomeParams p;
    p.genomeLength = 512;
    p.duplication = 2;
    GenomeWorkload genome(p);
    TmRuntime rt(AlgoKind::kRhNOrec);
    ThreadCtx &ctx = rt.registerThread();
    genome.setup(rt, ctx);
    Rng rng(1);
    // Consume the full sample stream.
    for (unsigned i = 0; i < p.genomeLength * p.duplication; ++i)
        genome.runOp(rt, ctx, rng);
    std::string why;
    EXPECT_TRUE(genome.verify(rt, &why)) << why;
}

TEST(WorkloadSerialTest, IntruderSteadyStateWrapsRounds)
{
    IntruderParams p;
    p.flows = 256;
    IntruderWorkload intruder(p);
    TmRuntime rt(AlgoKind::kHybridNOrec);
    ThreadCtx &ctx = rt.registerThread();
    intruder.setup(rt, ctx);
    Rng rng(1);
    // Consume more than one full stream round: flow ids must wrap
    // into fresh rounds and the accounting must stay exact.
    for (unsigned i = 0; i < p.flows * p.maxFragsPerFlow + 500; ++i)
        intruder.runOp(rt, ctx, rng);
    std::string why;
    EXPECT_TRUE(intruder.verify(rt, &why)) << why;
}

TEST(WorkloadSerialTest, VacationReservationsBalance)
{
    VacationParams p = VacationParams::low();
    p.resourcesPerTable = 64;
    p.customers = 32;
    VacationWorkload vacation(p);
    TmRuntime rt(AlgoKind::kNOrec);
    ThreadCtx &ctx = rt.registerThread();
    vacation.setup(rt, ctx);
    Rng rng(2);
    for (unsigned i = 0; i < 2000; ++i)
        vacation.runOp(rt, ctx, rng);
    std::string why;
    EXPECT_TRUE(vacation.verify(rt, &why)) << why;
}

} // namespace
} // namespace rhtm
