#!/usr/bin/env python3
"""Drive the commit-path A/B microops and fold them into a capture.

Usage: tools/ab_microops.py [--bench=build/bench/bench_microops]
                            [--rounds=3] [--min-time=0.05]
                            [--band=0.35] [--out=BENCH_10.json]

Runs the four commit-path campaign cells in bench_microops
(docs/COMMIT_PATH.md) as ALTERNATING off/on rounds -- round 1 runs
off then on, round 2 on then off, and so on -- so slow drift on the
host (thermal, noisy neighbors) cannot systematically favor one
variant. Each (benchmark, variant) keeps its fastest round (min),
the standard noise-floor estimator for microbenchmarks.

The folded result is written as a BENCH capture with the top-level
family "microops-ab": incomparable with the crash/adversary/store
families by design (tools/diff_bench.py reports those diffs as
no-ops), comparable cell-by-cell against future captures of the same
family via the "throughput" metric (iterations/second).

Exit status is 1 if any front's ON variant is slower than its OFF
baseline beyond the noise band -- an optimization that costs more
than the container-timing noise is a regression, not noise.
"""

import json
import os
import subprocess
import sys

# Benchmark base name -> the campaign front its flag toggles.
FRONTS = {
    "BM_ValidateAcrossCommits": "read-filter",
    "BM_ReadOwnWrites": "redo-index",
    "BM_ExtendAcrossCommits": "ts-extension",
    "BM_GroupCommitWriters": "group-commit",
}


def run_variant(bench, on, min_time):
    """One benchmark-binary run restricted to a single variant."""
    cmd = [
        bench,
        f"--benchmark_filter=on:{1 if on else 0}",
        f"--benchmark_min_time={min_time}",
        "--benchmark_format=json",
    ]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, check=True)
    out = json.loads(proc.stdout)
    cells = {}
    for b in out.get("benchmarks", []):
        base = b["name"].split("/")[0]
        if base not in FRONTS:
            continue
        if b.get("time_unit", "ns") != "ns":
            raise SystemExit(f"unexpected time unit in {b['name']}")
        # label is "<algo>/<off|on>", set by the benchmark itself.
        algo = b["label"].split("/")[0]
        cells[base] = {
            "algo": algo,
            "ns_per_iter": float(b["real_time"]),
            "threads": int(b.get("threads", 1)),
        }
    return cells


def main():
    bench = "build/bench/bench_microops"
    rounds = 3
    min_time = 0.05
    band = 0.35
    out_path = "BENCH_10.json"
    for arg in sys.argv[1:]:
        if arg.startswith("--bench="):
            bench = arg.split("=", 1)[1]
        elif arg.startswith("--rounds="):
            rounds = int(arg.split("=", 1)[1])
        elif arg.startswith("--min-time="):
            min_time = float(arg.split("=", 1)[1])
        elif arg.startswith("--band="):
            band = float(arg.split("=", 1)[1])
        elif arg.startswith("--out="):
            out_path = arg.split("=", 1)[1]
        else:
            print(f"unknown flag: {arg}", file=sys.stderr)
            return 2

    # best[(base, variant)] = fastest observed cell across rounds.
    best = {}
    for r in range(rounds):
        order = (False, True) if r % 2 == 0 else (True, False)
        for on in order:
            variant = "on" if on else "off"
            print(f"-- round {r + 1}/{rounds}: {variant}", flush=True)
            for base, cell in run_variant(bench, on, min_time).items():
                key = (base, variant)
                if (key not in best or
                        cell["ns_per_iter"] < best[key]["ns_per_iter"]):
                    best[key] = cell

    cells = []
    summary = {}
    regressions = []
    for base, front in sorted(FRONTS.items()):
        off = best.get((base, "off"))
        on = best.get((base, "on"))
        if off is None or on is None:
            print(f"missing variant for {base}", file=sys.stderr)
            return 1
        for variant, cell in (("off", off), ("on", on)):
            cells.append({
                "front": front,
                "benchmark": base,
                "algo": cell["algo"],
                "variant": variant,
                "threads": cell["threads"],
                "ns_per_iter": cell["ns_per_iter"],
                "throughput": 1e9 / cell["ns_per_iter"],
            })
        speedup = off["ns_per_iter"] / on["ns_per_iter"]
        verdict = ("WIN" if speedup > 1.0 + band else
                   "REGRESSION" if speedup < 1.0 / (1.0 + band) else
                   "flat")
        summary[front] = {
            "off_ns": off["ns_per_iter"],
            "on_ns": on["ns_per_iter"],
            "speedup": speedup,
            "verdict": verdict,
        }
        if verdict == "REGRESSION":
            regressions.append(front)

    capture = {
        "bench": "microops-ab",
        "generated_by": "tools/ab_microops.py",
        "rounds": rounds,
        "host_threads": os.cpu_count(),
        "cells": cells,
        "summary": summary,
    }
    with open(out_path, "w") as f:
        json.dump(capture, f, indent=2, sort_keys=True)
        f.write("\n")

    wins = 0
    for front, s in summary.items():
        print(f"{front:>14}: off {s['off_ns']:>10.0f} ns  "
              f"on {s['on_ns']:>10.0f} ns  "
              f"speedup {s['speedup']:.2f}x  [{s['verdict']}]")
        wins += s["verdict"] == "WIN"
    print(f"ab_microops: {wins} front(s) win beyond the +/-{band:.0%} "
          f"band; capture written to {out_path}")
    if regressions:
        print(f"ab_microops: REGRESSION on: {', '.join(regressions)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
