#!/usr/bin/env python3
"""Include-layering lint for src/.

The engine refactor fixed a strict layering for the library proper
(tests, bench and examples are integration points and exempt):

    util                                   (0)
    stats, fault, mem                      (1)
    htm, persist  -- simulated NVM device  (2)
    core/engine   -- the shared engine     (3)
    stm           -- pure-STM sessions     (4)
    core          -- hybrid sessions and the
                     admission gate        (5)
    api           -- runtime facade        (6)
    structures                             (7)
    store         -- sharded KV store      (8)
    workloads                              (8)
    check         -- interleaving explorer (9)

A file may include project headers only from its own layer or lower
ranks. In particular the engine must never include the api: the
sessions are composed BY the runtime, they must not know about it
(src/api re-exports engine headers for compatibility, not the other
way around). And the check layer is a pure consumer: it may include
anything below (it schedules the engine and drives the api), but no
library code may include src/check -- only tests and bench link it.

Usage: tools/check_layers.py [repo-root]
Exits 1 and lists every violating include edge when the layering is
broken, 0 otherwise.
"""

import os
import re
import sys

# Longest-prefix match order: core/engine and core/admission must be
# tested before core. The admission gate rides at the session rank: it
# is consulted by the api facade and may use the engine's waiters, but
# the engine must never know admission exists (rank 3 < 5 forbids it).
LAYERS = [
    ("core/engine", 3),
    ("core/admission.h", 5),
    ("util", 0),
    ("stats", 1),
    ("fault", 1),
    ("mem", 1),
    ("htm", 2),
    ("persist", 2),
    ("stm", 4),
    ("core", 5),
    ("api", 6),
    ("structures", 7),
    ("store", 8),
    ("workloads", 8),
    ("check", 9),
]

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"(src/[^"]+)"')


def layer_of(rel):
    """Layer (name, rank) of a src/-relative path, or None."""
    for prefix, rank in LAYERS:
        if rel == prefix or rel.startswith(prefix + "/"):
            return prefix, rank
    return None


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..")
    src = os.path.join(root, "src")
    if not os.path.isdir(src):
        print(f"check_layers: no src/ under {root}", file=sys.stderr)
        return 2

    violations = []
    files = 0
    edges = 0
    for dirpath, _, names in os.walk(src):
        for name in sorted(names):
            if not name.endswith((".h", ".cc")):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            here = layer_of(os.path.relpath(path, src)
                            .replace(os.sep, "/"))
            if here is None:
                violations.append(
                    f"{rel}: not in any declared layer "
                    f"(update tools/check_layers.py)")
                continue
            files += 1
            with open(path, encoding="utf-8") as f:
                for lineno, line in enumerate(f, 1):
                    m = INCLUDE_RE.match(line)
                    if not m:
                        continue
                    edges += 1
                    target_rel = m.group(1)[len("src/"):]
                    there = layer_of(target_rel)
                    if there is None:
                        violations.append(
                            f"{rel}:{lineno}: includes {m.group(1)} "
                            f"which is in no declared layer")
                        continue
                    if here[0] == "core/engine" and there[0] == "api":
                        violations.append(
                            f"{rel}:{lineno}: the engine must not "
                            f"include the api ({m.group(1)})")
                    elif there[0] == "check" and here[0] != "check":
                        violations.append(
                            f"{rel}:{lineno}: src/check is a leaf "
                            f"consumer; library code must not include "
                            f"it ({m.group(1)})")
                    elif there[1] > here[1]:
                        violations.append(
                            f"{rel}:{lineno}: layer '{here[0]}' "
                            f"(rank {here[1]}) includes {m.group(1)} "
                            f"from higher layer '{there[0]}' "
                            f"(rank {there[1]})")

    if violations:
        print(f"include-layering violations ({len(violations)}):")
        for v in violations:
            print(f"  {v}")
        return 1
    print(f"layering OK ({files} files, {edges} include edges)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
