#!/usr/bin/env bash
# One-stop CI gate: the include-layering lint, the tier-1 build + test
# suite, and a single ThreadSanitizer chaos leg as a concurrency smoke
# check (the full sanitizer soak matrix lives in tools/run_chaos.sh).
#
# Usage: tools/ci.sh [--skip-tsan]
set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_TSAN=0
for arg in "$@"; do
    case "$arg" in
        --skip-tsan) SKIP_TSAN=1 ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

echo "== include-layering lint =="
python3 tools/check_layers.py

echo "== tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure

if [ "$SKIP_TSAN" -eq 0 ]; then
    echo "== TSan chaos leg: stall-serial seed=1 =="
    cmake -B build-tsan -S . -DRHTM_SANITIZE=thread >/dev/null
    cmake --build build-tsan -j "$(nproc)" --target bench_chaos
    build-tsan/bench/bench_chaos \
        --schedule=stall-serial --seed=1 --seconds=2 --threads=1,4 \
        --algos=rh-norec,hy-norec-lazy --irrevocable-pct=20 --stats
fi

echo "ci gate passed"
