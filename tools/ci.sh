#!/usr/bin/env bash
# One-stop CI gate: the include-layering lint, the tier-1 build + test
# suite, the interleaving-explorer `check` leg (docs/CHECKING.md), the
# crash-recovery sweep with its reverted-fix regression and an ASan
# replay leg (docs/PERSISTENCE.md), and a single ThreadSanitizer chaos
# leg as a concurrency smoke check (the full sanitizer soak matrix
# lives in tools/run_chaos.sh).
#
# Usage: tools/ci.sh [--skip-tsan]
set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_TSAN=0
for arg in "$@"; do
    case "$arg" in
        --skip-tsan) SKIP_TSAN=1 ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

echo "== include-layering lint =="
python3 tools/check_layers.py

echo "== tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure

echo "== check: curated matrix, every AlgoKind (random walks) =="
build/bench/bench_check --mode=random --runs=40 --seed=1

echo "== check: exhaustive write-skew coverage, every AlgoKind =="
build/bench/bench_check --mode=dfs --program=write-skew \
    --runs=1000 --no-sleep-sets

echo "== check: reverted-fix regressions =="
# Each historical bug must FAIL with its fix reverted and pass with
# the fix in place. kill-switch-streak needs a schedule that parks the
# stale decayer across the breaker reopen: PCT depth 3 with this
# pinned seed reaches it; the other two fail on any schedule.
if build/bench/bench_check --algo=hy-norec \
        --regression=kill-switch-streak --revert \
        --mode=pct --seed=1 --depth=3 --runs=20000 --max-steps=3000; then
    echo "kill-switch-streak did not fail when reverted" >&2
    exit 1
fi
build/bench/bench_check --algo=hy-norec \
    --regression=kill-switch-streak \
    --mode=pct --seed=1 --depth=3 --runs=20000 --max-steps=3000
for reg in first-try-budget policy-snapshot deadline-unwind; do
    if build/bench/bench_check --algo=hy-norec \
            --regression="$reg" --revert --mode=random --runs=8; then
        echo "$reg did not fail when reverted" >&2
        exit 1
    fi
    build/bench/bench_check --algo=hy-norec \
        --regression="$reg" --mode=random --runs=8
done

echo "== check: commit-path campaign (docs/COMMIT_PATH.md) =="
# Front 3's extension zombie is schedule-dependent: 512 random walks
# with this seed park the reader inside the writer's clock-held
# writeback window on both eager kinds. The reverted fix must FAIL
# (the history checker sees the impossible read mix) and the shipped
# fix must survive the same exploration.
for algo in norec hy-norec; do
    if build/bench/bench_check --algo="$algo" \
            --regression=ts-extension --revert \
            --mode=random --seed=1 --runs=512; then
        echo "ts-extension did not fail when reverted ($algo)" >&2
        exit 1
    fi
    build/bench/bench_check --algo="$algo" --regression=ts-extension \
        --mode=random --seed=1 --runs=512
done
# Front 1's false-positive extreme: saturated summaries must never
# pass the disjointness skip, on any kind, while still committing.
build/bench/bench_check --algo=all --regression=filter-collision \
    --mode=random --seed=3 --runs=64

echo "== overload: adversary A/B, admission off vs on =="
# The two pathologies the admission gate must demonstrably bound
# (docs/OVERLOAD.md): tail collapse with the gate off, bounded p99
# plus nonzero shed/deadline counters with it on. The binary's exit
# status asserts every cell's invariant verified; the pathology-level
# off/on ratios are printed in its summary block.
build/bench/bench_adversary --threads=2,8 --algos=rh-norec,hy-norec \
    --pathologies=adv-serial-storm,adv-capacity-bomb \
    --ops=120 --admission=both --seed=1

echo "== overload: full sweep -> BENCH_ci.json, diff vs prior =="
# Parameters mirror the committed BENCH_7.json so ops/committed cells
# line up and only genuine latency/counter drift trips the diff.
build/bench/bench_adversary --threads=2,8 --algos=all --ops=150 \
    --admission=both --seed=1 --json=build/BENCH_ci.json
# Compare against the newest committed BENCH_*.json; incomparable
# bench families (crash vs adversary) diff as a no-op by design.
cp build/BENCH_ci.json BENCH_ci_tmp.json
python3 tools/diff_bench.py BENCH_ci_tmp.json
rm -f BENCH_ci_tmp.json

echo "== store: smoke + history check, every AlgoKind =="
# Mixed OLTP over the sharded store (docs/STORE.md): point ops, range
# scans and cross-shard RMWs. The check leg records every committed
# operation through the StoreObserver and must pass the strict-
# serializability checker for all 8 algorithms; the binary's exit
# status asserts it.
build/bench/bench_store --threads=2 --shards=2 --algos=all \
    --ops=200 --check-ops=120 --saturation=off --seed=1

echo "== store: group-commit history check (lazy slow-path batching) =="
# Front 4 (docs/COMMIT_PATH.md): opt-in flat-combining commit for the
# lazy kinds' software writers. The StoreObserver records every
# committed op with batching ON and the strict-serializability checker
# must still accept the history; the exit status asserts it.
build/bench/bench_store --threads=2 --shards=2 \
    --algos=norec-lazy,hy-norec-lazy --ops=150 --check-ops=150 \
    --check-threads=4 --saturation=off --group-commit=on --seed=1

echo "== store: saturation sweep, 1 shard vs 4 shards =="
# Disjoint-key scaling cells. On hosts with >= 4 hardware threads the
# binary enforces that 4 shards out-throughput 1 shard at 8 worker
# threads; on smaller hosts it reports the cells without enforcing.
build/bench/bench_store --threads=1,8 --shards=1,4 \
    --algos=rh-norec,norec,tl2 --ops=2000 --check=off --seed=1

echo "== crash-recovery: 3-seed sweep, every AlgoKind x site =="
for seed in 1 2 3; do
    build/bench/bench_crash --threads=1,2 --algos=all --ops=120 \
        --crash-seed="$seed" --seed="$seed"
done

echo "== crash-recovery: torn + reordered flushes =="
build/bench/bench_crash --threads=2 --algos=all --ops=120 \
    --torn --reordered --crash-seed=7

echo "== crash-recovery: reverted-fix regression =="
# Replaying an unsealed record must be caught by the recovery-
# consistency checker (docs/PERSISTENCE.md "Recovery algorithm").
if build/bench/bench_crash --threads=2 --algos=norec,rh-tl2 \
        --ops=120 --sites=pre-seal --revert=replay-unsealed \
        >/dev/null 2>&1; then
    echo "replay-unsealed did not fail when reverted" >&2
    exit 1
fi

echo "== crash-recovery: ASan leg over recovery replay =="
cmake -B build-asan -S . -DRHTM_SANITIZE=address >/dev/null
cmake --build build-asan -j "$(nproc)" --target bench_crash persist_tests
build-asan/tests/persist_tests
build-asan/bench/bench_crash --threads=1,2 --algos=all --ops=80 \
    --crash-seed=5 --torn

if [ "$SKIP_TSAN" -eq 0 ]; then
    echo "== TSan chaos leg: stall-serial seed=1 =="
    cmake -B build-tsan -S . -DRHTM_SANITIZE=thread >/dev/null
    cmake --build build-tsan -j "$(nproc)" --target bench_chaos
    build-tsan/bench/bench_chaos \
        --schedule=stall-serial --seed=1 --seconds=2 --threads=1,4 \
        --algos=rh-norec,hy-norec-lazy --irrevocable-pct=20 --stats
    echo "== TSan chaos leg: group commit under stall-publisher =="
    # Front 4 under the sanitizer: combiner/member handoffs, the
    # cross-thread publish, and the withdraw/repost loop are exactly
    # the shapes TSan exists to vet.
    build-tsan/bench/bench_chaos \
        --schedule=stall-publisher --seed=1 --seconds=2 --threads=1,4 \
        --algos=norec-lazy,hy-norec-lazy --group-commit=on --stats
fi

echo "ci gate passed"
