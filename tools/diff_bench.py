#!/usr/bin/env python3
"""Diff a BENCH_*.json capture against the newest prior capture.

Usage: tools/diff_bench.py NEW.json [--baseline=OLD.json]
                           [--band=0.35] [--strict]

Each PR in the sequence leaves a BENCH_<n>.json at the repo root; this
tool keeps the sequence honest by comparing the new capture against
the newest prior one. Without --baseline it picks the BENCH_*.json
with the highest numeric suffix below the new capture's own (falling
back to the newest by suffix that is not the new file itself).

Two captures are only comparable when their top-level "bench" family
matches; the sequence legitimately changes bench families between PRs
(crash sweep, adversary sweep, ...), so an incomparable baseline is
reported and exits 0 -- there is nothing to diff, not a regression.

Comparable captures are joined cell-by-cell on their identity fields
(every non-numeric field plus thread count). Shared numeric metrics
are compared with a relative noise band (default 0.35: container
timing is noisy; only changes beyond +/-35% are called out, and only
in the regressing direction -- higher for latency/seconds-like
metrics, lower for committed/ops-like ones). A verified flag flipping
true -> false is always a regression. Exit status is 0 unless --strict
is given, in which case any regression exits 1.
"""

import glob
import json
import os
import re
import sys

# Metrics where an increase beyond the band is a regression.
HIGHER_IS_WORSE = (
    "p50_us", "p99_us", "max_us", "seconds", "recovery_ms",
    "records_discarded", "crashes_injected",
)

# Metrics where a decrease beyond the band is a regression.
# cross_commits guards the store family (BENCH_9.json): fewer
# committed cross-shard transactions for the same cell identity means
# the multi-domain commit path regressed.
LOWER_IS_WORSE = ("committed", "ops", "throughput", "cross_commits")


def cell_key(cell):
    """Identity of a cell: every non-numeric field, plus threads."""
    key = []
    for k in sorted(cell):
        v = cell[k]
        if isinstance(v, str) or isinstance(v, bool) and k != "verified":
            key.append((k, v))
    if "threads" in cell:
        key.append(("threads", cell["threads"]))
    return tuple(key)


def pick_baseline(new_path):
    """Newest BENCH_*.json (by numeric suffix) that is not new_path."""
    root = os.path.dirname(os.path.abspath(new_path)) or "."
    new_suffix = suffix_of(new_path)
    best, best_n = None, -1
    for cand in glob.glob(os.path.join(root, "BENCH_*.json")):
        if os.path.abspath(cand) == os.path.abspath(new_path):
            continue
        n = suffix_of(cand)
        if n is None:
            continue
        if new_suffix is not None and n >= new_suffix:
            continue
        if n > best_n:
            best, best_n = cand, n
    return best


def suffix_of(path):
    m = re.match(r"BENCH_(\d+)\.json$", os.path.basename(path))
    return int(m.group(1)) if m else None


def compare(old, new, band):
    """Return a list of human-readable regression strings."""
    old_cells = {cell_key(c): c for c in old.get("cells", [])}
    regressions = []
    matched = 0
    for cell in new.get("cells", []):
        prev = old_cells.get(cell_key(cell))
        if prev is None:
            continue
        matched += 1
        label = ", ".join(
            f"{k}={v}" for k, v in cell_key(cell))
        if prev.get("verified") is True and cell.get("verified") is False:
            regressions.append(f"[{label}] verified: true -> false")
        for metric in cell:
            a, b = prev.get(metric), cell.get(metric)
            if not (isinstance(a, (int, float)) and
                    isinstance(b, (int, float))):
                continue
            if isinstance(a, bool) or isinstance(b, bool):
                continue
            if metric in HIGHER_IS_WORSE:
                worse = b > a * (1 + band) and b - a > 1e-9
            elif metric in LOWER_IS_WORSE:
                worse = b < a * (1 - band) and a - b > 1e-9
            else:
                continue
            if worse:
                regressions.append(
                    f"[{label}] {metric}: {a} -> {b}")
    return regressions, matched


def main():
    new_path = None
    baseline = None
    band = 0.35
    strict = False
    for arg in sys.argv[1:]:
        if arg.startswith("--baseline="):
            baseline = arg.split("=", 1)[1]
        elif arg.startswith("--band="):
            band = float(arg.split("=", 1)[1])
        elif arg == "--strict":
            strict = True
        else:
            new_path = arg
    if new_path is None:
        print(__doc__.strip().splitlines()[2].strip())
        return 2

    if baseline is None:
        baseline = pick_baseline(new_path)
    if baseline is None:
        print(f"diff_bench: no prior BENCH_*.json to compare "
              f"{new_path} against; nothing to diff")
        return 0

    with open(new_path) as f:
        new = json.load(f)
    with open(baseline) as f:
        old = json.load(f)

    if old.get("bench") != new.get("bench"):
        print(f"diff_bench: {os.path.basename(baseline)} is a "
              f"'{old.get('bench')}' capture, "
              f"{os.path.basename(new_path)} is a "
              f"'{new.get('bench')}' capture; schemas are not "
              f"comparable -- nothing to diff")
        return 0

    regressions, matched = compare(old, new, band)
    print(f"diff_bench: {os.path.basename(new_path)} vs "
          f"{os.path.basename(baseline)}: {matched} comparable cells, "
          f"noise band +/-{band:.0%}")
    for r in regressions:
        print(f"  regression: {r}")
    if not regressions:
        print("  no regressions beyond the noise band")
    return 1 if (strict and regressions) else 0


if __name__ == "__main__":
    sys.exit(main())
