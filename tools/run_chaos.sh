#!/usr/bin/env bash
# Tier-2 chaos matrix: build with ThreadSanitizer and soak the
# bank-transfer conservation workload under every named fault schedule
# with a fixed seed matrix, so any run is exactly reproducible from
# its (schedule, seed) pair (see docs/FAULT_INJECTION.md). Ends with
# a crash/recover soak of the persistence overlay under the same
# sanitizer (docs/PERSISTENCE.md).
#
# Usage: tools/run_chaos.sh [build-dir] [--seconds=S] [--threads=LIST]
#
# Environment:
#   RHTM_SANITIZE  Sanitizer for the build (default: thread; set to
#                  'address' for ASan, 'undefined' for UBSan, or ''
#                  for an uninstrumented run).
#   SEEDS          Space-separated seed matrix (default: "1 2 3").
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build-chaos
SECONDS_PER_CELL=2
THREADS=1,4
for arg in "$@"; do
    case "$arg" in
        --seconds=*) SECONDS_PER_CELL="${arg#*=}" ;;
        --threads=*) THREADS="${arg#*=}" ;;
        -*) echo "unknown flag: $arg" >&2; exit 2 ;;
        *) BUILD_DIR="$arg" ;;
    esac
done

echo "== include-layering lint =="
python3 tools/check_layers.py

SANITIZE="${RHTM_SANITIZE-thread}"
SEEDS="${SEEDS:-1 2 3}"
SCHEDULES="prefix-kill postfix-kill capacity-squeeze delay-in-publish-window stall-serial stall-publisher irrevocable-storm adversary-storm"

echo "== configure ($BUILD_DIR, sanitizer: ${SANITIZE:-none}) =="
cmake -B "$BUILD_DIR" -S . -DRHTM_SANITIZE="$SANITIZE" >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_chaos \
    bench_check bench_crash bench_adversary fault_tests \
    integration_tests persist_tests

echo "== fault + chaos + persist unit suites =="
"$BUILD_DIR/tests/fault_tests"
"$BUILD_DIR/tests/integration_tests" --gtest_filter='*Chaos*'
"$BUILD_DIR/tests/persist_tests"

# Interleaving-explorer leg (docs/CHECKING.md) under the same
# sanitizer as the soak: the cooperative scheduler serializes every
# step, so TSan here vets the scheduler/runtime handshake itself
# (run_chaos with RHTM_SANITIZE='' gives the uninstrumented leg).
echo "== check: explorer under ${SANITIZE:-no} sanitizer =="
"$BUILD_DIR/bench/bench_check" --mode=random --runs=12 --seed=1
"$BUILD_DIR/bench/bench_check" --mode=dfs --algo=rh-norec \
    --program=write-skew --runs=300 --no-sleep-sets

echo "== soak matrix: {$SCHEDULES} x seeds {$SEEDS} =="
fail=0
for schedule in $SCHEDULES; do
    for seed in $SEEDS; do
        echo "-- $schedule seed=$seed"
        if ! "$BUILD_DIR/bench/bench_chaos" \
                --schedule="$schedule" --seed="$seed" \
                --seconds="$SECONDS_PER_CELL" --threads="$THREADS" \
                --algos=rh-norec,hy-norec-lazy \
                --irrevocable-pct=20 --stats; then
            echo "FAILED: $schedule seed=$seed" >&2
            fail=1
        fi
    done
done

# Group-commit soak (docs/COMMIT_PATH.md front 4): the lazy kinds'
# flat-combining commit under the schedule that stretches publish
# windows -- maximal combiner/member overlap -- plus scripted stalls.
# Conservation + opacity + quiescence are checked per cell as above.
echo "== group-commit soak: lazy kinds x seeds {$SEEDS} =="
for seed in $SEEDS; do
    echo "-- stall-publisher + group commit seed=$seed"
    if ! "$BUILD_DIR/bench/bench_chaos" \
            --schedule=stall-publisher --seed="$seed" \
            --seconds="$SECONDS_PER_CELL" --threads="$THREADS" \
            --algos=norec-lazy,hy-norec-lazy \
            --group-commit=on --stats; then
        echo "FAILED: group-commit soak seed=$seed" >&2
        fail=1
    fi
done

# Adversarial overload soak under the same sanitizer: the named
# pathologies drive the admission gate and the deadline unwind from
# many threads at once while the adversary-storm schedule jitters the
# gate decision, stalls serial holders, and deschedules deadline
# polls -- the racy paths TSan exists to vet (docs/OVERLOAD.md).
echo "== adversarial overload soak: seeds {$SEEDS} =="
for seed in $SEEDS; do
    echo "-- adversary pathologies + adversary-storm seed=$seed"
    if ! "$BUILD_DIR/bench/bench_adversary" \
            --threads="$THREADS" --algos=rh-norec,hy-norec \
            --ops=60 --admission=both --seed="$seed" \
            --fault-schedule=adversary-storm; then
        echo "FAILED: adversary soak seed=$seed" >&2
        fail=1
    fi
done

# Crash/recover soak under the same sanitizer: every AlgoKind, every
# crash site, the full seed matrix, with torn and reordered flush
# capture on -- each run recovers and checks every captured snapshot
# (docs/PERSISTENCE.md).
echo "== crash-recovery soak: seeds {$SEEDS} =="
for seed in $SEEDS; do
    echo "-- crash soak seed=$seed (torn+reordered)"
    if ! "$BUILD_DIR/bench/bench_crash" \
            --threads="$THREADS" --algos=all --ops=150 \
            --seed="$seed" --crash-seed="$seed" --torn --reordered; then
        echo "FAILED: crash soak seed=$seed" >&2
        fail=1
    fi
done

# The irrevocable-storm schedule crosses lock handoffs with exception
# unwinds; run it under UBSan too (the TSan matrix above cannot see
# e.g. invalid shifts or misaligned unwinds), unless this whole run
# already is the UBSan one.
if [ "$SANITIZE" != "undefined" ]; then
    UB_BUILD_DIR="${BUILD_DIR}-ubsan"
    echo "== irrevocable-storm under UBSan ($UB_BUILD_DIR) =="
    cmake -B "$UB_BUILD_DIR" -S . -DRHTM_SANITIZE=undefined >/dev/null
    cmake --build "$UB_BUILD_DIR" -j "$(nproc)" --target bench_chaos
    for seed in $SEEDS; do
        echo "-- irrevocable-storm (ubsan) seed=$seed"
        if ! "$UB_BUILD_DIR/bench/bench_chaos" \
                --schedule=irrevocable-storm --seed="$seed" \
                --seconds="$SECONDS_PER_CELL" --threads="$THREADS" \
                --irrevocable-pct=20 --stats; then
            echo "FAILED: irrevocable-storm (ubsan) seed=$seed" >&2
            fail=1
        fi
    done
fi

if [ "$fail" -ne 0 ]; then
    echo "chaos matrix FAILED" >&2
    exit 1
fi
echo "chaos matrix passed"
