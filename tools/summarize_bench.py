#!/usr/bin/env python3
"""Summarize bench_output.txt into per-figure markdown tables.

Usage: tools/summarize_bench.py [bench_output.txt|capture_dir/]
                                [--threads=8]

For every benchmark in the capture, prints a compact table of
throughput and the paper's analysis rows at the chosen thread count,
plus the RH-vs-HY headline ratios.

The path may be a directory of captures: every file in it is parsed
independently (so a legacy capture without the overload columns can
sit next to a current one) and the rows are folded into one summary.
"""

import os
import sys
from collections import defaultdict

COLS = [
    "bench", "algo", "threads", "seconds", "ops", "throughput",
    "conflict", "capacity", "restarts", "slowpath", "prefix",
    "postfix", "injected", "subscription", "attempts", "ks_act",
    "ks_bypass", "p50_us", "p99_us", "max_us", "stalls", "irrev",
    "accesses", "crashes", "replayed", "discarded", "recovery_ms",
    "deadline_exc", "adm_shed", "adm_queued",
    "verified",
]

# Captures from before the deadline/admission columns were added.
PRE_OVERLOAD_COLS = COLS[:27] + ["verified"]

# Captures from before the crash-recovery columns were added.
PRE_RECOVERY_COLS = COLS[:23] + ["verified"]

# Captures from before the accesses-per-op column was added.
PRE_ACCESS_COLS = COLS[:22] + ["verified"]

# Captures from before the irrevocable-upgrades column was added.
PRE_IRREV_COLS = COLS[:21] + ["verified"]

# Captures from before the latency/stall columns were added.
PRE_LATENCY_COLS = COLS[:17] + ["verified"]

# Captures from before the fault-injection columns were added.
LEGACY_COLS = COLS[:12] + ["verified"]

FLOAT_COLS = ("throughput", "conflict", "capacity", "restarts",
              "slowpath", "prefix", "postfix", "injected",
              "subscription", "attempts", "ks_bypass", "p50_us",
              "p99_us", "max_us", "accesses", "recovery_ms")

# Defaults for rows captured before the crash-recovery columns.
NO_RECOVERY = dict(crashes="0", replayed="0", discarded="0",
                   recovery_ms="0")

# Defaults for rows captured before the deadline/admission columns.
NO_OVERLOAD = dict(deadline_exc="0", adm_shed="0", adm_queued="0")


def ns_per_access(row):
    """Average cost of one transactional access, derived from the
    throughput and the per-op access rate (0 when not captured)."""
    rate = row["throughput"] * row["accesses"]
    return 1e9 / rate if rate > 0 else 0.0


def parse(path):
    """Parse one capture file, or fold in every file of a directory.

    The fold-in is per-file: each file's lines are classified against
    the schema table independently, so mixing captures from different
    eras in one directory cannot confuse the classification (and a
    directory path no longer crashes with IsADirectoryError).
    """
    if os.path.isdir(path):
        rows = []
        for name in sorted(os.listdir(path)):
            sub = os.path.join(path, name)
            if os.path.isfile(sub):
                rows.extend(parse(sub))
        return rows
    rows = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith(("#", "bench,", "###")):
                continue
            parts = line.split(",")
            if len(parts) == len(COLS):
                row = dict(zip(COLS, parts))
            elif len(parts) == len(PRE_OVERLOAD_COLS):
                row = dict(zip(PRE_OVERLOAD_COLS, parts))
                row.update(NO_OVERLOAD)
            elif len(parts) == len(PRE_RECOVERY_COLS):
                row = dict(zip(PRE_RECOVERY_COLS, parts))
                row.update(**NO_RECOVERY, **NO_OVERLOAD)
            elif len(parts) == len(PRE_ACCESS_COLS):
                row = dict(zip(PRE_ACCESS_COLS, parts))
                row.update(accesses="0", **NO_RECOVERY, **NO_OVERLOAD)
            elif len(parts) == len(PRE_IRREV_COLS):
                row = dict(zip(PRE_IRREV_COLS, parts))
                row.update(irrev="0", accesses="0", **NO_RECOVERY,
                           **NO_OVERLOAD)
            elif len(parts) == len(PRE_LATENCY_COLS):
                row = dict(zip(PRE_LATENCY_COLS, parts))
                row.update(p50_us="0", p99_us="0", max_us="0",
                           stalls="0", irrev="0", accesses="0",
                           **NO_RECOVERY, **NO_OVERLOAD)
            elif len(parts) == len(LEGACY_COLS):
                row = dict(zip(LEGACY_COLS, parts))
                row.update(injected="0", subscription="0",
                           attempts="0", ks_act="0", ks_bypass="0",
                           p50_us="0", p99_us="0", max_us="0",
                           stalls="0", irrev="0", accesses="0",
                           **NO_RECOVERY, **NO_OVERLOAD)
            else:
                continue
            try:
                row["threads"] = int(row["threads"])
                row["ks_act"] = int(row["ks_act"])
                row["stalls"] = int(row["stalls"])
                row["irrev"] = int(row["irrev"])
                row["crashes"] = int(row["crashes"])
                row["replayed"] = int(row["replayed"])
                row["discarded"] = int(row["discarded"])
                row["deadline_exc"] = int(row["deadline_exc"])
                row["adm_shed"] = int(row["adm_shed"])
                row["adm_queued"] = int(row["adm_queued"])
                for k in FLOAT_COLS:
                    row[k] = float(row[k])
            except ValueError:
                continue
            rows.append(row)
    return rows


def main():
    path = "bench_output.txt"
    threads = 8
    for arg in sys.argv[1:]:
        if arg.startswith("--threads="):
            threads = int(arg.split("=", 1)[1])
        else:
            path = arg

    rows = parse(path)
    benches = defaultdict(list)
    for r in rows:
        if r["threads"] == threads:
            benches[r["bench"]].append(r)

    for bench in benches:
        print(f"### {bench} @ {threads} threads\n")
        show_faults = any(r["injected"] > 0 or r["ks_act"] > 0
                          for r in benches[bench])
        show_lat = any(r["max_us"] > 0 or r["stalls"] > 0
                       for r in benches[bench])
        show_irrev = any(r["irrev"] > 0 for r in benches[bench])
        show_access = any(r["accesses"] > 0 for r in benches[bench])
        show_recovery = any(r["crashes"] > 0 or r["replayed"] > 0
                            for r in benches[bench])
        show_overload = any(r["deadline_exc"] > 0 or r["adm_shed"] > 0
                            or r["adm_queued"] > 0
                            for r in benches[bench])
        fault_hdr = " inj/op | ks | " if show_faults else " "
        fault_sep = "---|---|" if show_faults else ""
        lat_hdr = " p50us | p99us | stalls | " if show_lat else " "
        lat_sep = "---|---|---|" if show_lat else ""
        irrev_hdr = " irrev | " if show_irrev else " "
        irrev_sep = "---|" if show_irrev else ""
        access_hdr = " acc/op | ns/acc | " if show_access else " "
        access_sep = "---|---|" if show_access else ""
        rec_hdr = (" crashes | replayed | discarded | rec_ms | "
                   if show_recovery else " ")
        rec_sep = "---|---|---|---|" if show_recovery else ""
        over_hdr = (" dl_exc | shed | q_ticks | "
                    if show_overload else " ")
        over_sep = "---|---|---|" if show_overload else ""
        extra_hdr = (fault_hdr.rstrip() + lat_hdr.rstrip() +
                     irrev_hdr.rstrip() + access_hdr.rstrip() +
                     rec_hdr.rstrip() + over_hdr)
        print("| algo | ops/s | conf/op | cap/op | restarts | "
              f"slow% | prefix | postfix |{extra_hdr}ok |")
        print(f"|---|---|---|---|---|---|---|---|{fault_sep}"
              f"{lat_sep}{irrev_sep}{access_sep}{rec_sep}{over_sep}---|")
        by_algo = {}
        for r in benches[bench]:
            by_algo[r["algo"]] = r
            fault_cells = ""
            if show_faults:
                fault_cells = (f" {r['injected']:.4f} "
                               f"| {r['ks_act']} |")
            lat_cells = ""
            if show_lat:
                lat_cells = (f" {r['p50_us']:.1f} | {r['p99_us']:.1f} "
                             f"| {r['stalls']} |")
            irrev_cells = f" {r['irrev']} |" if show_irrev else ""
            access_cells = ""
            if show_access:
                access_cells = (f" {r['accesses']:.2f} "
                                f"| {ns_per_access(r):.1f} |")
            rec_cells = ""
            if show_recovery:
                rec_cells = (f" {r['crashes']} | {r['replayed']} "
                             f"| {r['discarded']} "
                             f"| {r['recovery_ms']:.3f} |")
            over_cells = ""
            if show_overload:
                over_cells = (f" {r['deadline_exc']} | {r['adm_shed']} "
                              f"| {r['adm_queued']} |")
            print(f"| {r['algo']} | {r['throughput']:,.0f} "
                  f"| {r['conflict']:.4f} | {r['capacity']:.4f} "
                  f"| {r['restarts']:.3f} | {100 * r['slowpath']:.1f} "
                  f"| {r['prefix']:.2f} | {r['postfix']:.2f} "
                  f"|{fault_cells}{lat_cells}{irrev_cells}"
                  f"{access_cells}{rec_cells}{over_cells} "
                  f"{r['verified']} |")
        rh, hy = by_algo.get("rh-norec"), by_algo.get("hy-norec")
        if rh and hy:
            tput = rh["throughput"] / hy["throughput"] if hy[
                "throughput"] else 0
            conf = (hy["conflict"] / rh["conflict"]
                    if rh["conflict"] > 0 else float("inf"))
            rst = (hy["restarts"] / rh["restarts"]
                   if rh["restarts"] > 0 else float("inf"))
            print(f"\nrh/hy throughput = {tput:.2f}x, "
                  f"hy/rh conflicts = {conf:.2f}x, "
                  f"hy/rh restarts = {rst:.2f}x")
        print()


if __name__ == "__main__":
    main()
